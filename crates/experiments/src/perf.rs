//! `perf` subcommand: hot-path throughput microbenchmarks plus figure-kernel
//! wall times, recorded to `BENCH_hotpath.json` at the repository root.
//!
//! Vantage's claim is that fine-grain partitioning is enforceable with low
//! overheads at replacement time; this harness makes the simulator's own
//! per-access cost *measurable and regression-guarded*. Each run drives
//! fixed seeded workloads through every scheme/array combination of
//! interest and appends one entry to the trajectory file, so the repo
//! accumulates a throughput history across PRs:
//!
//! * **Microbenchmarks** — raw `Llc::access` loops (4 partitions, uniform
//!   random lines over a working set of twice the cache capacity, so the
//!   steady state mixes hits, demotions and evictions). Reported as
//!   accesses/second.
//! * **Figure kernels** — wall time of representative experiment kernels at
//!   quick scale (model math, dynamics simulation, state accounting).
//!
//! The workloads are fully deterministic (seeded [`SmallRng`], fixed access
//! counts), so two runs on the same machine differ only by machine noise.

use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vantage::{RankMode, VantageConfig, VantageLlc};
use vantage_bench::{append_entry, BenchRecord};
use vantage_cache::{CacheArray, LineAddr, SetAssocArray, SkewArray, ZArray};
use vantage_partitioning::{
    AccessRequest, BaselineLlc, Llc, PartitionId, PippConfig, PippLlc, RankPolicy, WayPartLlc,
};
use vantage_telemetry::{NullSink, Telemetry};

use crate::common::{record_failure, Options};
use crate::{fig_dynamics, fig_model, tables};

/// Result of one access-loop microbenchmark.
#[derive(Clone, Debug)]
pub struct MicrobenchResult {
    /// Scheme/array label (e.g. `vantage_z4_52`).
    pub name: String,
    /// Cache capacity in lines.
    pub frames: usize,
    /// Timed accesses (excludes warmup).
    pub accesses: u64,
    /// Wall time of the timed phase, seconds.
    pub wall_s: f64,
    /// `accesses / wall_s`.
    pub accesses_per_sec: f64,
}

/// Result of one figure-kernel timing.
#[derive(Clone, Debug)]
pub struct KernelResult {
    /// Kernel name (experiment subcommand it corresponds to).
    pub name: String,
    /// Wall time, seconds.
    pub wall_s: f64,
}

/// Scale parameters for one perf run.
#[derive(Clone, Copy, Debug)]
struct Scale {
    frames: usize,
    warmup: u64,
    timed: u64,
}

impl Scale {
    fn from_options(o: &Options) -> Self {
        if o.quick {
            Self {
                frames: 8 * 1024,
                warmup: 100_000,
                timed: 400_000,
            }
        } else {
            Self {
                frames: 32 * 1024,
                warmup: 500_000,
                timed: 4_000_000,
            }
        }
    }
}

const PARTS: usize = 4;

/// Drives `n` uniform random accesses over `PARTS` partitions, each with a
/// private working set of `frames / 2` lines (2x total capacity pressure).
fn drive(llc: &mut dyn Llc, frames: usize, n: u64, rng: &mut SmallRng) {
    let ws = (frames / 2) as u64;
    for _ in 0..n {
        let p = (rng.gen::<u32>() as usize) % PARTS;
        let base = (p as u64 + 1) << 40;
        llc.access(AccessRequest::read(
            PartitionId::from_index(p),
            LineAddr(base + rng.gen_range(0..ws)),
        ));
    }
}

/// Times one scheme: warmup, then a timed access loop.
fn bench_llc(name: &str, llc: &mut dyn Llc, scale: Scale, seed: u64) -> MicrobenchResult {
    let even = vec![(scale.frames / PARTS) as u64; PARTS];
    llc.set_targets(&even);
    let mut rng = SmallRng::seed_from_u64(seed);
    drive(llc, scale.frames, scale.warmup, &mut rng);
    let t0 = Instant::now();
    drive(llc, scale.frames, scale.timed, &mut rng);
    let wall_s = t0.elapsed().as_secs_f64();
    MicrobenchResult {
        name: name.to_string(),
        frames: scale.frames,
        accesses: scale.timed,
        wall_s,
        accesses_per_sec: scale.timed as f64 / wall_s.max(1e-9),
    }
}

fn vantage_on(array: Box<dyn CacheArray>, cfg: VantageConfig, seed: u64) -> VantageLlc {
    VantageLlc::try_new(array, PARTS, cfg, seed).expect("valid Vantage config")
}

/// Runs every scheme/array microbenchmark at the given scale.
pub fn run_microbenches(opts: &Options) -> Vec<MicrobenchResult> {
    let scale = Scale::from_options(opts);
    let seed = opts.seed;
    let f = scale.frames;
    let mut out = Vec::new();
    let mut go = |name: &str, llc: &mut dyn Llc| {
        let r = bench_llc(name, llc, scale, seed ^ 0xBE7C4);
        eprintln!(
            "  {:<24} {:>10.0} acc/s ({} accesses in {:.3}s)",
            r.name, r.accesses_per_sec, r.accesses, r.wall_s
        );
        out.push(r);
    };

    // The acceptance-gate configuration: Vantage on a Z4/52 zcache.
    go(
        "vantage_z4_52",
        &mut vantage_on(
            Box::new(ZArray::new(f, 4, 52, seed)),
            VantageConfig::default(),
            seed,
        ),
    );
    go(
        "vantage_z4_16",
        &mut vantage_on(
            Box::new(ZArray::new(f, 4, 16, seed)),
            VantageConfig::default(),
            seed,
        ),
    );
    go(
        "vantage_skew4",
        &mut vantage_on(
            Box::new(SkewArray::new(f, 4, seed)),
            VantageConfig::default(),
            seed,
        ),
    );
    go(
        "vantage_sa16",
        &mut vantage_on(
            Box::new(SetAssocArray::hashed(f, 16, seed)),
            VantageConfig::default(),
            seed,
        ),
    );
    go(
        "vantage_rrip_z4_52",
        &mut vantage_on(
            Box::new(ZArray::new(f, 4, 52, seed)),
            VantageConfig {
                rank: RankMode::Rrip { bits: 3 },
                ..VantageConfig::default()
            },
            seed,
        ),
    );
    go(
        "baseline_lru_sa16",
        &mut BaselineLlc::try_new(
            Box::new(SetAssocArray::hashed(f, 16, seed)),
            PARTS,
            RankPolicy::Lru,
        )
        .expect("valid baseline geometry"),
    );
    go(
        "baseline_lru_z4_52",
        &mut BaselineLlc::try_new(
            Box::new(ZArray::new(f, 4, 52, seed)),
            PARTS,
            RankPolicy::Lru,
        )
        .expect("valid baseline geometry"),
    );
    go(
        "waypart_sa16",
        &mut WayPartLlc::try_new(f, 16, PARTS, seed).expect("valid way-partition geometry"),
    );
    go(
        "pipp_sa16",
        &mut PippLlc::try_new(f, 16, PARTS, PippConfig::default(), seed)
            .expect("valid PIPP geometry"),
    );
    out
}

/// Telemetry-overhead ceiling enforced by the NullSink gate.
///
/// Raised from 2% when the SoA tag-metadata layout landed: the disabled-
/// telemetry check is a fixed per-access cost, and the SoA layout shrank
/// the bare loop it is measured against, so the same absolute cost reads
/// as a larger fraction. 5% of the faster loop is a tighter absolute bound
/// than 2% of the old one.
const NULLSINK_MAX_OVERHEAD: f64 = 0.05;

/// Quick-mode floor on the acceptance-gate configuration's hot-path rate,
/// expressed *relative* to the same run's [`HOTPATH_REFERENCE`] rate. The
/// two schemes share the array geometry and walk machinery and differ only
/// in Vantage's demotion bookkeeping (candidate scans, setpoint feedback,
/// aliasing clamp), so their ratio cancels host-speed noise that makes an
/// absolute acc/s floor meaningless on shared runners — the same binary
/// measures 3x apart here depending on neighbor load, while the ratio
/// holds ~0.3-0.65. A catastrophic hot-path regression (say an accidental
/// per-access lane sweep) drags the ratio an order of magnitude below the
/// floor.
const HOTPATH_GATE_BENCH: &str = "vantage_z4_52";

/// The same-run reference the hot-path gate divides by.
const HOTPATH_REFERENCE: &str = "baseline_lru_z4_52";

/// Minimum `vantage_z4_52 / baseline_lru_z4_52` rate ratio in quick mode.
const HOTPATH_MIN_REL: f64 = 0.2;

/// Checks the quick-mode hot-path floor on freshly measured
/// microbenchmarks and returns the measured ratio (0.0 when either row is
/// missing, which is itself recorded as a failure).
fn check_hotpath_gate(opts: &Options, micro: &[MicrobenchResult]) -> f64 {
    let rate = |name: &str| {
        micro
            .iter()
            .find(|m| m.name == name)
            .map(|m| m.accesses_per_sec)
    };
    let (v, b) = match (rate(HOTPATH_GATE_BENCH), rate(HOTPATH_REFERENCE)) {
        (Some(v), Some(b)) if b > 0.0 => (v, b),
        _ => {
            record_failure(
                "perf hotpath gate",
                format!("{HOTPATH_GATE_BENCH} or {HOTPATH_REFERENCE} missing from the matrix"),
            );
            return 0.0;
        }
    };
    let rel = v / b;
    eprintln!(
        "  hotpath gate: {HOTPATH_GATE_BENCH} {v:>10.0} acc/s = {rel:.2}x \
         {HOTPATH_REFERENCE} (min {HOTPATH_MIN_REL:.2}x, quick-enforced: {})",
        opts.quick
    );
    if opts.quick && rel < HOTPATH_MIN_REL {
        record_failure(
            "perf hotpath gate",
            format!(
                "{HOTPATH_GATE_BENCH} reached only {rel:.2}x the \
                 {HOTPATH_REFERENCE} rate (min {HOTPATH_MIN_REL:.2}x)"
            ),
        );
    }
    rel
}

/// The NullSink gate at an explicit scale: interleaved best-of-`rounds`
/// runs of the acceptance-gate configuration (`vantage_z4_52`) bare and
/// with an installed `NullSink` telemetry producer. Interleaving and
/// best-of filtering cancel most machine noise, so the remaining delta is
/// the instrumentation's own branch cost. Returns `(bare, nullsink)`.
fn nullsink_gate_at(
    scale: Scale,
    seed: u64,
    rounds: usize,
) -> (MicrobenchResult, MicrobenchResult) {
    let f = scale.frames;
    let mut best: [Option<MicrobenchResult>; 2] = [None, None];
    for _ in 0..rounds {
        for (slot, name) in [(0, "vantage_z4_52_bare"), (1, "vantage_z4_52_nullsink")] {
            let mut llc = vantage_on(
                Box::new(ZArray::new(f, 4, 52, seed)),
                VantageConfig::default(),
                seed,
            );
            if slot == 1 {
                llc.set_telemetry(Telemetry::new(Box::new(NullSink), 0));
            }
            let r = bench_llc(name, &mut llc, scale, seed ^ 0xBE7C4);
            if best[slot]
                .as_ref()
                .is_none_or(|b| r.accesses_per_sec > b.accesses_per_sec)
            {
                best[slot] = Some(r);
            }
        }
    }
    let [bare, nulled] = best;
    (bare.expect("rounds ran"), nulled.expect("rounds ran"))
}

/// Runs the NullSink overhead gate: telemetry compiled in but disabled (a
/// `NullSink` producer sampling on the default period) must stay within
/// [`NULLSINK_MAX_OVERHEAD`] of the uninstrumented `vantage_z4_52` rate.
/// A breach is recorded in the failure registry (keep-going), so `perf`
/// still writes its trajectory entry before the process exits nonzero.
pub fn run_nullsink_gate(opts: &Options) -> Vec<MicrobenchResult> {
    let (bare, nulled) = nullsink_gate_at(Scale::from_options(opts), opts.seed, 3);
    let overhead = 1.0 - nulled.accesses_per_sec / bare.accesses_per_sec;
    eprintln!(
        "  nullsink gate: bare {:>10.0} acc/s, nullsink {:>10.0} acc/s, overhead {:+.2}%",
        bare.accesses_per_sec,
        nulled.accesses_per_sec,
        overhead * 100.0
    );
    if overhead > NULLSINK_MAX_OVERHEAD {
        record_failure(
            "perf nullsink gate",
            format!(
                "NullSink telemetry costs {:.2}% throughput on vantage_z4_52 \
                 (limit {:.0}%)",
                overhead * 100.0,
                NULLSINK_MAX_OVERHEAD * 100.0
            ),
        );
    }
    vec![bare, nulled]
}

/// Times representative figure kernels at quick scale (they exercise the
/// full workload -> core -> UCP -> scheme stack rather than the bare LLC).
pub fn run_kernels(opts: &Options) -> Vec<KernelResult> {
    let mut kopts = opts.clone();
    kopts.quick = true;
    kopts.mixes_per_class = 1;
    kopts.out_dir = opts.out_dir.join("perf-scratch");
    type Kernel = (&'static str, fn(&Options));
    let kernels: &[Kernel] = &[
        ("fig1", fig_model::fig1),
        ("fig8", fig_dynamics::fig8),
        ("overheads", tables::overheads),
    ];
    let mut out = Vec::new();
    for (name, f) in kernels {
        let t0 = Instant::now();
        f(&kopts);
        let wall_s = t0.elapsed().as_secs_f64();
        eprintln!("  kernel {name:<12} {wall_s:.3}s");
        out.push(KernelResult {
            name: (*name).to_string(),
            wall_s,
        });
    }
    out
}

/// Renders one run entry as a JSON object (hand-rolled: the workspace is
/// offline and vendors no serde). The shared preamble and trajectory
/// append mechanics live in [`vantage_bench::record`].
fn render_entry(
    opts: &Options,
    micro: &[MicrobenchResult],
    kernels: &[KernelResult],
    hotpath_rel: f64,
) -> String {
    let mut rec = BenchRecord::new(opts.quick, opts.seed);
    let s = rec.body_mut();
    s.push_str("    \"microbench\": [\n");
    for (i, m) in micro.iter().enumerate() {
        let comma = if i + 1 < micro.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "      {{\"name\": \"{}\", \"frames\": {}, \"accesses\": {}, \"wall_s\": {:.6}, \"accesses_per_sec\": {:.1}}}{comma}",
            m.name, m.frames, m.accesses, m.wall_s, m.accesses_per_sec
        );
    }
    s.push_str("    ],\n    \"kernels\": [\n");
    for (i, k) in kernels.iter().enumerate() {
        let comma = if i + 1 < kernels.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "      {{\"name\": \"{}\", \"wall_s\": {:.6}}}{comma}",
            k.name, k.wall_s
        );
    }
    let _ = write!(
        s,
        "    ],\n    \"hotpath_gate\": {{\"bench\": \"{HOTPATH_GATE_BENCH}\", \
         \"reference\": \"{HOTPATH_REFERENCE}\", \"rel\": {hotpath_rel:.3}, \
         \"min_rel\": {HOTPATH_MIN_REL:.2}}}"
    );
    rec.finish()
}

/// The `perf` subcommand: runs all microbenchmarks and kernels and appends
/// the results to `BENCH_hotpath.json` in the current directory (the repo
/// root in CI and normal use).
pub fn perf(opts: &Options) {
    perf_to(opts, Path::new("BENCH_hotpath.json"));
}

/// [`perf`] writing the trajectory to an explicit path (test support).
pub fn perf_to(opts: &Options, path: &Path) {
    println!(
        "perf: hot-path microbenchmarks ({} scale)",
        if opts.quick { "quick" } else { "full" }
    );
    let mut micro = run_microbenches(opts);
    let hotpath_rel = check_hotpath_gate(opts, &micro);
    println!("perf: telemetry NullSink overhead gate");
    micro.extend(run_nullsink_gate(opts));
    println!("perf: figure kernels (quick scale)");
    let kernels = run_kernels(opts);
    let entry = render_entry(opts, &micro, &kernels, hotpath_rel);
    match append_entry(path, &entry) {
        Ok(()) => println!("  wrote {}", path.display()),
        Err(e) => record_failure(path.display().to_string(), e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_options() -> Options {
        Options {
            quick: true,
            ..Options::default()
        }
    }

    #[test]
    fn microbench_names_are_unique_and_rates_positive() {
        // A micro-scale run: small cache, few accesses, but the full scheme
        // matrix — catches construction or accounting regressions cheaply.
        let scale = Scale {
            frames: 1024,
            warmup: 2_000,
            timed: 4_000,
        };
        let mut llc = vantage_on(
            Box::new(ZArray::new(scale.frames, 4, 52, 5)),
            VantageConfig::default(),
            5,
        );
        let r = bench_llc("vantage_z4_52", &mut llc, scale, 7);
        assert_eq!(r.accesses, 4_000);
        assert!(r.accesses_per_sec > 0.0);
        assert!(r.wall_s > 0.0);
    }

    #[test]
    fn nullsink_gate_measures_both_variants() {
        let scale = Scale {
            frames: 1024,
            warmup: 2_000,
            timed: 4_000,
        };
        let (bare, nulled) = nullsink_gate_at(scale, 5, 1);
        assert_eq!(bare.name, "vantage_z4_52_bare");
        assert_eq!(nulled.name, "vantage_z4_52_nullsink");
        assert!(bare.accesses_per_sec > 0.0);
        assert!(nulled.accesses_per_sec > 0.0);
    }

    #[test]
    fn entry_appends_into_a_json_array() {
        let dir = std::env::temp_dir().join(format!("vantage-perf-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.json");
        let _ = std::fs::remove_file(&path);
        let micro = vec![MicrobenchResult {
            name: "x".into(),
            frames: 1,
            accesses: 2,
            wall_s: 0.5,
            accesses_per_sec: 4.0,
        }];
        let kernels = vec![KernelResult {
            name: "k".into(),
            wall_s: 0.25,
        }];
        let entry = render_entry(&tiny_options(), &micro, &kernels, 0.42);
        append_entry(&path, &entry).unwrap();
        append_entry(&path, &entry).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.trim_start().starts_with('['));
        assert!(body.trim_end().ends_with(']'));
        assert_eq!(body.matches("\"microbench\"").count(), 2);
        assert_eq!(body.matches("\"accesses_per_sec\"").count(), 2);
        assert_eq!(body.matches("\"hotpath_gate\"").count(), 2);
        assert!(body.contains("\"rel\": 0.420"));
        let _ = std::fs::remove_file(&path);
    }
}
