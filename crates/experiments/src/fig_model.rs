//! Model-driven figures: Fig. 1 (associativity CDFs), Fig. 2
//! (managed-region distributions), Fig. 3 (controller transfer function and
//! thresholds table) and Fig. 5 (unmanaged-region sizing).

use vantage::controller::ThresholdTable;
use vantage::model::{assoc, managed, sizing};

use crate::common::{write_csv, Options};
use crate::montecarlo::{
    managed_demotion_cdf, max_deviation, random_array_eviction_cdf, zcache_eviction_cdf,
    DemotionPolicy,
};

/// Fig. 1: `FA(x) = x^R` for R ∈ {4, 8, 16, 64}, analytically and measured
/// on real zcache arrays.
pub fn fig1(opts: &Options) {
    println!("== Fig. 1: associativity CDFs under the uniformity assumption ==");
    let rs = [4u32, 8, 16, 64];
    let points = 100;
    let reps = if opts.quick { 5_000 } else { 40_000 };

    let mut rows = Vec::new();
    let mut zc = Vec::new();
    let mut ideal = Vec::new();
    for &r in &rs {
        zc.push(zcache_eviction_cdf(
            r as usize,
            reps,
            points,
            opts.seed + u64::from(r),
        ));
        ideal.push(random_array_eviction_cdf(
            r as usize,
            reps,
            points,
            opts.seed + u64::from(r),
        ));
    }
    for i in 0..=points {
        let x = i as f64 / points as f64;
        let mut row = format!("{x:.2}");
        for (k, &r) in rs.iter().enumerate() {
            row.push_str(&format!(
                ",{:.6e},{:.6e},{:.6e}",
                assoc::cdf(x, r),
                zc[k][i],
                ideal[k][i]
            ));
        }
        rows.push(row);
    }
    let header = "x,model_R4,zcache_R4,random_R4,model_R8,zcache_R8,random_R8,model_R16,zcache_R16,random_R16,model_R64,zcache_R64,random_R64";
    write_csv(&opts.out_dir, "fig1_assoc_cdf", header, &rows);

    println!("  reference points (paper §3.2): FA(0.8; R=64) ≈ 1e-6:");
    println!("    model = {:.2e}", assoc::cdf(0.8, 64));
    for (k, &r) in rs.iter().enumerate() {
        let model: Vec<f64> = (0..=points)
            .map(|i| assoc::cdf(i as f64 / points as f64, r))
            .collect();
        println!(
            "  R={r:>2}: max |model - zcache| = {:.4}, |model - random-array| = {:.4} ({reps} replacements)",
            max_deviation(&model, &zc[k]),
            max_deviation(&model, &ideal[k]),
        );
    }
    println!(
        "  note: the random-candidates array matches FA exactly; the zcache is close at\n  \
         moderate R and drifts in the extreme-rank tail at large R under this no-reuse\n  \
         adversarial stress (real workloads behave like the model, per §3.2/§6.2)."
    );
}

/// Fig. 2b/2c: managed-region associativity under exactly-one demotions
/// (Eq. 2) vs demote-on-average (Eq. 3), with Monte-Carlo validation.
pub fn fig2(opts: &Options) {
    println!("== Fig. 2: managed-region associativity (u = 0.3) ==");
    let u = 0.3;
    let rs = [16u32, 32, 64];
    let points = 100;
    let reps = if opts.quick { 20_000 } else { 120_000 };

    let mut rows = Vec::new();
    let mut mc: Vec<(Vec<f64>, Vec<f64>)> = Vec::new();
    for &r in &rs {
        let a = managed::balanced_aperture(r, 1.0 - u);
        let one = managed_demotion_cdf(
            16 * 1024,
            u,
            r as usize,
            DemotionPolicy::ExactlyOne,
            reps,
            points,
            opts.seed + u64::from(r),
        );
        let avg = managed_demotion_cdf(
            16 * 1024,
            u,
            r as usize,
            DemotionPolicy::Aperture(a),
            reps,
            points,
            opts.seed + 1000 + u64::from(r),
        );
        mc.push((one, avg));
    }
    for i in 0..=points {
        let x = i as f64 / points as f64;
        let mut row = format!("{x:.2}");
        for (k, &r) in rs.iter().enumerate() {
            let a = managed::balanced_aperture(r, 1.0 - u);
            row.push_str(&format!(
                ",{:.5},{:.5},{:.5},{:.5}",
                managed::one_demotion_cdf(x, r, u),
                mc[k].0[i],
                managed::average_demotion_cdf(x, a),
                mc[k].1[i],
            ));
        }
        rows.push(row);
    }
    let header = "x,eq2_R16,mc_one_R16,eq3_R16,mc_avg_R16,eq2_R32,mc_one_R32,eq3_R32,mc_avg_R32,eq2_R64,mc_one_R64,eq3_R64,mc_avg_R64";
    write_csv(&opts.out_dir, "fig2_managed_cdf", header, &rows);

    for &r in &rs {
        let a = managed::balanced_aperture(r, 1.0 - u);
        println!(
            "  R={r:>2}: balanced aperture = {a:.3}; demote-on-average touches only e > {:.3}; \
             exactly-one demotes {:.0}% of its lines below that point",
            1.0 - a,
            100.0 * managed::one_demotion_cdf(1.0 - a, r, u)
        );
    }
}

/// Fig. 3: the feedback transfer function (3a) and the demotion thresholds
/// lookup table (3c), reproducing the paper's worked example.
pub fn fig3(opts: &Options) {
    println!("== Fig. 3: feedback-based aperture control artifacts ==");
    // 3a/3c worked example: Ti = 1000 lines, 10% slack, A_max = 0.5, c=256.
    let table4 =
        ThresholdTable::try_new(1000, 0.1, 0.5, 256, 4).expect("valid controller parameters");
    println!("  paper's 4-entry table (Ti=1000, slack=10%, A_max=0.5, c=256):");
    println!("    {:<16} dems per 256 candidates", "size range");
    let probes = [
        (1000u64, 1033u64),
        (1034, 1066),
        (1067, 1100),
        (1101, u64::MAX),
    ];
    for (lo, hi) in probes {
        let thr = table4
            .threshold(lo + 10)
            .or_else(|| table4.threshold(hi.min(lo + 20)));
        let hi_s = if hi == u64::MAX {
            "+".to_string()
        } else {
            format!("-{hi}")
        };
        println!("    {:<16} {:?}", format!("{lo}{hi_s}"), thr);
    }

    let mut rows = Vec::new();
    let table8 =
        ThresholdTable::try_new(1000, 0.1, 0.5, 256, 8).expect("valid controller parameters");
    for size in (950..=1200).step_by(5) {
        rows.push(format!(
            "{size},{:.4},{}",
            table8.aperture(size),
            table8.threshold(size).map_or(0, |t| t)
        ));
    }
    write_csv(
        &opts.out_dir,
        "fig3_transfer_function",
        "size,aperture,dems_threshold",
        &rows,
    );
}

/// Fig. 5: unmanaged-region fraction versus `A_max` and versus `P_ev`
/// (analytical sweep, R ∈ {16, 52}, slack = 0.1).
pub fn fig5(opts: &Options) {
    println!("== Fig. 5: unmanaged region sizing ==");
    let slack = 0.1;

    let mut rows = Vec::new();
    for i in 1..=100 {
        let a_max = i as f64 / 100.0;
        rows.push(format!(
            "{a_max:.2},{:.4},{:.4}",
            sizing::unmanaged_fraction(16, 1e-2, a_max, slack).min(1.0),
            sizing::unmanaged_fraction(52, 1e-2, a_max, slack).min(1.0)
        ));
    }
    write_csv(&opts.out_dir, "fig5a_u_vs_amax", "a_max,u_R16,u_R52", &rows);

    let mut rows = Vec::new();
    for i in 0..=60 {
        let pev = 10f64.powf(-6.0 + i as f64 / 10.0);
        rows.push(format!(
            "{pev:.3e},{:.4},{:.4}",
            sizing::unmanaged_fraction(16, pev, 0.4, slack).min(1.0),
            sizing::unmanaged_fraction(52, pev, 0.4, slack).min(1.0)
        ));
    }
    write_csv(&opts.out_dir, "fig5b_u_vs_pev", "p_ev,u_R16,u_R52", &rows);

    println!("  paper reference points (R = 52, A_max = 0.4, slack = 0.1):");
    println!(
        "    P_ev = 1e-2 -> u = {:.1}%   (paper: ~13%)",
        100.0 * sizing::unmanaged_fraction(52, 1e-2, 0.4, slack)
    );
    println!(
        "    P_ev = 1e-4 -> u = {:.1}%   (paper: ~21%)",
        100.0 * sizing::unmanaged_fraction(52, 1e-4, 0.4, slack)
    );
}
