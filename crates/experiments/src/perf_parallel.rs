//! `perf-parallel` subcommand: bank-sharding scaling benchmark, recorded to
//! `BENCH_parallel.json` at the repository root.
//!
//! The sharded engine's pitch is that batching accesses by bank buys
//! throughput *without changing a single replacement decision*. This
//! harness measures both halves of that claim on the acceptance-gate
//! configuration (Vantage on Z4/52 banks):
//!
//! * **Scaling** — aggregate accesses/second of the batched
//!   [`ParallelBankedLlc`] versus the serial per-access [`BankedLlc`]
//!   baseline at 2, 4 and 8 banks, on identical seeded workloads.
//! * **Determinism** — every run folds its outcome stream, final
//!   statistics and partition sizes into one FNV-1a digest; the serial and
//!   batched digests must be bit-identical at every bank count. A mismatch
//!   is recorded in the failure registry unconditionally.
//!
//! Quick mode doubles as the CI gate: the 4-bank batched engine must reach
//! at least [`GATE_MIN_SPEEDUP`]x the serial per-access rate (with equal
//! digests), or the run is recorded as failed. The 8-bank point is held to
//! the informational [`FLOOR8_MIN_SPEEDUP`] floor the same way — it
//! previously had no check at all, and each engine's timed windows opened
//! cold on the other engine's evictions (see [`WARM_DIV`]), which hid
//! high-bank-count regressions.

use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vantage::{VantageConfig, VantageLlc};
use vantage_cache::hash::mix64;
use vantage_cache::{LineAddr, ZArray};
use vantage_partitioning::{
    pipeline::DIGEST_SEED, AccessOutcome, AccessRequest, BankedLlc, Llc, ParallelBankedLlc,
    PartitionId, PipelinedBankedLlc, RingStats, Sharded,
};

use vantage_bench::BenchRecord;

use crate::common::{record_failure, Options};

const PARTS: usize = 4;

/// Bank counts swept by the scaling benchmark.
const BANK_SWEEP: [usize; 3] = [2, 4, 8];

/// The bank count the CI gate checks.
const GATE_BANKS: usize = 4;

/// Minimum batched-over-serial speedup the quick-mode gate enforces.
///
/// Rebased from 2.0x when the SoA tag-metadata layout landed: the layout
/// change sped the *serial* per-access baseline up by ~30% (the ratio's
/// denominator) while the batched engine — already hiding most of its tag
/// misses behind walk prefetching — gained little, legitimately
/// compressing the measured advantage to ~1.7x on the reference host. The
/// absolute per-engine rates are recorded alongside the ratio, so a
/// serial-baseline regression cannot masquerade as batched-engine
/// improvement.
const GATE_MIN_SPEEDUP: f64 = 1.4;

/// The high-bank-count point of the sweep, measured with the same
/// multi-round paired protocol as the gate and held to an informational
/// floor. Before the warm-prefix fix (see [`WARM_DIV`]) this point had no
/// floor at all, so a regression that only hurt high bank counts — where
/// the cold-restart transient was largest — sailed through CI.
const FLOOR_BANKS: usize = 8;

/// Informational floor on the 8-bank batched-over-serial speedup. Set
/// below the gate's minimum deliberately: with more banks than worker
/// threads the batched engine multiplexes, so scaling flattens, but it
/// must never fall back toward the serial engine's rate by more than
/// measurement noise (best-of-[`ROUNDS`] paired ratios measure ~1.4-1.5x
/// on the reference host). Quick mode records a failure-registry entry
/// when breached.
const FLOOR8_MIN_SPEEDUP: f64 = 1.2;

/// Requests handed to `access_batch` per call (the driver's batch, distinct
/// from the engine's internal per-worker batching).
const BATCH: usize = 65536;

/// The pipelined ring engine's bank count: the 8-bank point, where the
/// bank-major drain's per-bank locality advantage is largest and where the
/// batched sweep historically had only an informational floor.
const PIPE_BANKS: usize = 8;

/// Hard gate on the pipelined-over-serial speedup at [`PIPE_BANKS`] banks —
/// the promotion of the old informational 8-bank floor onto the new
/// engine's recorded entry. The pipelined engine buffers whole windows in
/// per-bank rings and serves each bank's run contiguously, so at the
/// memory-bound [`PipeScale`] it must beat the per-access serial engine by
/// a wide margin, not merely avoid regressing. Quick mode records a
/// failure-registry entry on breach, and CI additionally asserts the
/// recorded entry.
const PIPE_MIN_SPEEDUP: f64 = 2.5;

/// Worker counts the pipelined determinism verification replays the
/// measured trace at: the recorded digests must be identical at every
/// count (and to the serial reference), or the entry records a failure.
const PIPE_JOBS_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Measurement rounds for the pipelined pair — more than [`ROUNDS`]
/// because this gate is *hard* where the batched sweep's 8-bank floor was
/// informational: the best-of-rounds paired-slice estimator converges on
/// the quiet-host ratio as samples grow, and on shared hosts individual
/// rounds can swing ±15% around it. Five rounds keeps a noisy round from
/// deciding a hard gate.
const PIPE_ROUNDS: usize = 5;

/// Scale of the pipelined-engine pair: a footprint where the serial
/// per-access baseline is memory-stall-bound and the cache is fully warmed
/// before timing, the operating regime the ring engine targets. This is
/// deliberately larger than [`Scale`]: the batched sweep keeps its
/// historical scale so `BENCH_parallel.json` trajectories stay comparable,
/// and the pipelined entry records its own scale alongside its own gate.
/// The frame count is chosen so one bank's metadata sits within the host's
/// cache and TLB reach while the whole cache's does not — the regime where
/// bank-major service pays off and the one a large simulated LLC actually
/// occupies; both smaller footprints (everything near) and much larger
/// ones (not even one bank near) measurably narrow the gap. Quick mode
/// again shrinks the access counts, never the cache.
#[derive(Clone, Copy, Debug)]
struct PipeScale {
    frames: usize,
    warmup: u64,
    timed: u64,
}

impl PipeScale {
    fn from_options(o: &Options) -> Self {
        if o.quick {
            Self {
                frames: 2 * 1024 * 1024,
                warmup: 4_000_000,
                timed: 2_400_000,
            }
        } else {
            Self {
                frames: 2 * 1024 * 1024,
                warmup: 4_000_000,
                timed: 4_000_000,
            }
        }
    }
}

/// Ring-batch size of the measured pipelined engine. Larger than the
/// engine's default: each `access_batch` call re-ramps the two-stage
/// prefetch pipeline from cold, so at benchmark scale fewer, longer
/// batches serve measurably faster, and the per-bank runs of a timed
/// window (timed / [`SLICES`] / [`PIPE_BANKS`] requests) comfortably fill
/// them.
const PIPE_BATCH: usize = 16 * 1024;

/// Result of one scaling-benchmark run.
#[derive(Clone, Debug)]
pub struct ScalingResult {
    /// Run label (e.g. `banked4_serial`, `banked4_batched_j2`).
    pub name: String,
    /// Bank count.
    pub banks: usize,
    /// Worker threads (0 = the per-access serial baseline).
    pub jobs: usize,
    /// Timed accesses (excludes warmup).
    pub accesses: u64,
    /// Total wall time of the timed phase, seconds.
    pub wall_s: f64,
    /// Best timed slice's rate (see [`SLICES`]).
    pub accesses_per_sec: f64,
    /// FNV-1a digest of outcomes + stats + partition sizes.
    pub hash: u64,
}

/// Scale parameters: the working set is deliberately larger than the
/// hot-path harness so the sweep is memory-bound — the regime bank
/// batching exists for.
#[derive(Clone, Copy, Debug)]
struct Scale {
    frames: usize,
    warmup: u64,
    timed: u64,
}

impl Scale {
    fn from_options(o: &Options) -> Self {
        // Quick mode shrinks the access counts, not the cache: shrinking
        // the arrays would lift the whole sweep into the host's caches and
        // measure a regime the sharded engine does not target.
        if o.quick {
            Self {
                frames: 128 * 1024,
                warmup: 400_000,
                timed: 1_200_000,
            }
        } else {
            Self {
                frames: 256 * 1024,
                warmup: 500_000,
                timed: 4_000_000,
            }
        }
    }
}

/// One FNV-1a fold step over a `u64` word.
fn fnv(h: u64, x: u64) -> u64 {
    (h ^ x).wrapping_mul(0x0000_0100_0000_01B3)
}

/// Digests an outcome stream plus the cache's observable end state. Two
/// engines that digest equal are indistinguishable to a simulation.
fn state_hash(outcomes: &[AccessOutcome], llc: &mut dyn Llc) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &o in outcomes {
        h = fnv(h, o.is_hit() as u64);
    }
    // stats_mut() refreshes the per-bank aggregation on sharded caches.
    let stats = llc.stats_mut().clone();
    for p in 0..llc.num_partitions() {
        h = fnv(h, stats.hits[p]);
        h = fnv(h, stats.misses[p]);
        h = fnv(h, llc.partition_size(PartitionId::from_index(p)));
    }
    fnv(h, stats.evictions)
}

/// Builds the gate configuration: `banks` Vantage-Z4/52 banks behind an
/// address-interleaved [`BankedLlc`], with even capacity targets. Fully
/// deterministic in `seed`, so two calls build indistinguishable caches.
fn build_banked(frames: usize, banks: usize, seed: u64) -> BankedLlc {
    let bank_llcs = (0..banks)
        .map(|b| {
            let array = ZArray::new(frames / banks, 4, 52, seed ^ mix64(b as u64 + 0xBA));
            Box::new(
                VantageLlc::try_new(
                    Box::new(array),
                    PARTS,
                    VantageConfig::default(),
                    seed ^ mix64(b as u64),
                )
                .expect("valid Vantage config"),
            ) as Box<dyn Llc>
        })
        .collect();
    let mut llc = BankedLlc::try_new(bank_llcs, seed ^ 0xBA2C).expect("valid bank set");
    llc.set_targets(&[(frames / PARTS) as u64; PARTS]);
    llc
}

/// The shared workload: uniform random lines over `PARTS` partitions, each
/// with a private working set of `2 * frames` lines (8x total capacity
/// pressure), keeping the sweep miss-heavy and memory-bound — the regime
/// the sharded engine's walk prefetching targets.
fn trace(frames: usize, n: u64, seed: u64) -> Vec<AccessRequest> {
    let ws = 2 * frames as u64;
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let p = (rng.gen::<u32>() as usize) % PARTS;
            let base = (p as u64 + 1) << 40;
            AccessRequest::read(
                PartitionId::from_index(p),
                LineAddr(base + rng.gen_range(0..ws)),
            )
        })
        .collect()
}

/// Timed slices per run: the timed phase is measured in [`SLICES`] equal
/// windows, with the serial and batched engines *interleaved* slice by
/// slice — each engine advances through the same requests, and each
/// slice's two windows sit a fraction of a second apart in wall time. The
/// best single window's rate is reported per engine, and the speedup is
/// taken from the best time-adjacent window *pair*, so host throughput
/// drift (frequency governors, noisy neighbors on virtualized hosts)
/// cancels out of the ratio instead of folding into it (same
/// noise-rejection idea as the hot-path harness's interleaved best-of
/// NullSink gate). The digest still covers every timed access.
const SLICES: usize = 6;

/// Untimed warm prefix of each engine's slice window, as a divisor of the
/// slice length. Interleaving the engines means every timed window would
/// otherwise open on the microarchitectural state the *other* engine left
/// behind — several MB of the opening engine's tag arrays freshly evicted
/// from the host's caches — so each window used to fold a cold-restart
/// transient into its rate. The transient is not symmetric (the batched
/// engine touches memory bank-by-bank, the serial engine access-
/// interleaved, so they refill at different speeds), which biased the
/// paired ratio, worst at the 8-bank point where the per-bank state is
/// smallest and the transient is the largest fraction of the window.
/// Serving the first `1/WARM_DIV` of each slice untimed re-warms the
/// engine before its clock starts; those accesses still land in the
/// outcome stream and digest.
const WARM_DIV: usize = 8;

/// Measurement of one engine run: total timed wall clock, the best timed
/// slice's rate, and the end-state digest.
struct RunMeasurement {
    wall_s: f64,
    best_rate: f64,
    hash: u64,
}

/// Warms both engines on the first `warmup` requests, then times the rest
/// in [`SLICES`] interleaved windows (see [`SLICES`]): the serial engine
/// serves a slice one access at a time, then the batched engine serves
/// the same slice in [`BATCH`]-sized `access_batch` calls. Returns both
/// measurements and the best per-slice batched-over-serial ratio.
fn run_pair(
    serial: &mut dyn Llc,
    batched: &mut dyn Llc,
    reqs: &[AccessRequest],
    warmup: usize,
) -> (RunMeasurement, RunMeasurement, f64) {
    for &r in &reqs[..warmup] {
        serial.access(r);
    }
    let mut scratch = Vec::with_capacity(BATCH);
    for chunk in reqs[..warmup].chunks(BATCH) {
        scratch.clear();
        batched.access_batch(chunk, &mut scratch);
    }
    let timed = &reqs[warmup..];
    let mut out_s = Vec::with_capacity(timed.len());
    let mut out_b = Vec::with_capacity(timed.len());
    let (mut wall_s, mut wall_b) = (0.0f64, 0.0f64);
    let (mut best_s, mut best_b, mut best_ratio) = (0.0f64, 0.0f64, 0.0f64);
    for slice in timed.chunks(timed.len().div_ceil(SLICES)) {
        // Each engine re-warms on the slice's untimed prefix before its
        // window opens (see [`WARM_DIV`]); every access is still served
        // exactly once and digested.
        let (warm, rest) = slice.split_at(slice.len() / WARM_DIV);
        for &r in warm {
            out_s.push(serial.access(r));
        }
        let t0 = Instant::now();
        for &r in rest {
            out_s.push(serial.access(r));
        }
        let dt_s = t0.elapsed().as_secs_f64().max(1e-9);
        for chunk in warm.chunks(BATCH) {
            batched.access_batch(chunk, &mut out_b);
        }
        let t0 = Instant::now();
        for chunk in rest.chunks(BATCH) {
            batched.access_batch(chunk, &mut out_b);
        }
        let dt_b = t0.elapsed().as_secs_f64().max(1e-9);
        wall_s += dt_s;
        wall_b += dt_b;
        let (rate_s, rate_b) = (rest.len() as f64 / dt_s, rest.len() as f64 / dt_b);
        best_s = best_s.max(rate_s);
        best_b = best_b.max(rate_b);
        best_ratio = best_ratio.max(rate_b / rate_s);
    }
    let m_s = RunMeasurement {
        wall_s,
        best_rate: best_s,
        hash: state_hash(&out_s, serial),
    };
    let m_b = RunMeasurement {
        wall_s: wall_b,
        best_rate: best_b,
        hash: state_hash(&out_b, batched),
    };
    (m_s, m_b, best_ratio)
}

/// Interleaved measurement rounds at the gate bank count. Host throughput
/// drifts on benchmark timescales (frequency governors, background load),
/// so the serial and batched engines are measured back-to-back [`ROUNDS`]
/// times and the gate speedup taken from the best *round* — an
/// adjacent-in-time pair. Taking each engine's best window separately
/// would compare measurements minutes apart and fold the drift into the
/// ratio. Same noise-rejection idea as the hot-path harness's interleaved
/// best-of NullSink gate.
const ROUNDS: usize = 3;

/// Runs the sweep: serial and batched engines at each bank count. Returns
/// the per-bank results plus the gate and 8-bank-floor speedups — each the
/// best time-adjacent slice-pair ratio at [`GATE_BANKS`] / [`FLOOR_BANKS`]
/// across rounds (see [`run_pair`]).
fn run_sweep(opts: &Options, scale: Scale) -> (Vec<ScalingResult>, f64, f64) {
    let seed = opts.seed ^ 0xBA12;
    let reqs = trace(scale.frames, scale.warmup + scale.timed, seed ^ 0xD21E);
    let warmup = scale.warmup as usize;
    let jobs = opts.bank_jobs.max(1);
    let mut out = Vec::new();
    let mut push = |name: String, banks: usize, jobs: usize, m: RunMeasurement| {
        let r = ScalingResult {
            name,
            banks,
            jobs,
            accesses: scale.timed,
            wall_s: m.wall_s,
            accesses_per_sec: m.best_rate,
            hash: m.hash,
        };
        eprintln!(
            "  {:<20} {:>10.0} acc/s (hash {:#018x})",
            r.name, r.accesses_per_sec, r.hash
        );
        out.push(r);
    };
    let mut gate_speedup = 0.0f64;
    let mut floor8_speedup = 0.0f64;
    for banks in BANK_SWEEP {
        let rounds = if banks == GATE_BANKS || banks == FLOOR_BANKS {
            ROUNDS
        } else {
            1
        };
        let mut best_ratio = -1.0f64;
        let mut kept: Option<(RunMeasurement, RunMeasurement)> = None;
        for round in 0..rounds {
            // Fresh builds each round: construction is deterministic, so
            // every round replays the identical simulation (equal digests)
            // and only the timing differs.
            let mut serial = build_banked(scale.frames, banks, seed);
            let mut par =
                ParallelBankedLlc::from_banked(build_banked(scale.frames, banks, seed), jobs);
            let (ms, mb, ratio) = run_pair(&mut serial, &mut par, &reqs, warmup);
            if rounds > 1 {
                eprintln!(
                    "  banked{banks} round {}/{rounds}: {:>10.0} serial, {:>10.0} batched \
                     acc/s, best paired ratio {ratio:.2}x",
                    round + 1,
                    ms.best_rate,
                    mb.best_rate
                );
            }
            if ratio > best_ratio {
                best_ratio = ratio;
                kept = Some((ms, mb));
            }
        }
        let (ms, mb) = kept.expect("at least one round ran");
        push(format!("banked{banks}_serial"), banks, 0, ms);
        push(format!("banked{banks}_batched_j{jobs}"), banks, jobs, mb);
        if banks == GATE_BANKS {
            gate_speedup = best_ratio;
        }
        if banks == FLOOR_BANKS {
            floor8_speedup = best_ratio;
        }
    }
    (out, gate_speedup, floor8_speedup)
}

/// Per-bank outcome digests of a serial reference run: fold each timed
/// outcome's hit bit into its bank's FNV-1a digest, in stream order. The
/// pipelined engine computes the same digests internally while serving
/// bank-major, so equality here proves per-bank order (and every
/// replacement decision) survived the re-scheduling.
fn serial_bank_digests(
    llc: &BankedLlc,
    reqs: &[AccessRequest],
    outs: &[AccessOutcome],
) -> Vec<u64> {
    let mut d = vec![DIGEST_SEED; Sharded::num_banks(llc)];
    for (r, o) in reqs.iter().zip(outs) {
        let b = llc.bank_of(r.addr);
        d[b] = fnv(d[b], o.is_hit() as u64);
    }
    d
}

/// Digests per-bank outcome digests plus the cache's observable end state
/// — the pipelined analogue of [`state_hash`], comparable across engines
/// that expose the same bank decomposition.
fn pipe_state_hash(bank_digests: &[u64], llc: &mut dyn Llc) -> u64 {
    let mut h = DIGEST_SEED;
    for &d in bank_digests {
        h = fnv(h, d);
    }
    let stats = llc.stats_mut().clone();
    for p in 0..llc.num_partitions() {
        h = fnv(h, stats.hits[p]);
        h = fnv(h, stats.misses[p]);
        h = fnv(h, llc.partition_size(PartitionId::from_index(p)));
    }
    fnv(h, stats.evictions)
}

/// Warms both engines through their batch paths (identical traffic and
/// end state either way — warmup is untimed), then times the rest in
/// [`SLICES`] interleaved windows exactly like [`run_pair`]: the serial
/// engine serves a slice one access at a time; the pipelined engine
/// ingests the same slice into its rings and drains it bank-major inside
/// the timed window (`run_window` = shard + serve + quiesce, so the
/// window's clock covers the whole pipeline, not just production).
fn run_pipe_pair(
    serial: &mut BankedLlc,
    pipe: &mut PipelinedBankedLlc,
    reqs: &[AccessRequest],
    warmup: usize,
) -> (RunMeasurement, RunMeasurement, f64) {
    let mut scratch = Vec::with_capacity(BATCH);
    for chunk in reqs[..warmup].chunks(BATCH) {
        scratch.clear();
        serial.access_batch(chunk, &mut scratch);
    }
    for chunk in reqs[..warmup].chunks(BATCH) {
        pipe.run_window(chunk);
    }
    // Digests cover exactly the timed stream, like `run_pair`'s outcome
    // buffers.
    pipe.reset_digests();
    let timed = &reqs[warmup..];
    let mut out_s = Vec::with_capacity(timed.len());
    let (mut wall_s, mut wall_p) = (0.0f64, 0.0f64);
    let (mut best_s, mut best_p, mut best_ratio) = (0.0f64, 0.0f64, 0.0f64);
    for slice in timed.chunks(timed.len().div_ceil(SLICES)) {
        let (warm, rest) = slice.split_at(slice.len() / WARM_DIV);
        for &r in warm {
            out_s.push(serial.access(r));
        }
        let t0 = Instant::now();
        for &r in rest {
            out_s.push(serial.access(r));
        }
        let dt_s = t0.elapsed().as_secs_f64().max(1e-9);
        pipe.run_window(warm);
        let t0 = Instant::now();
        pipe.run_window(rest);
        let dt_p = t0.elapsed().as_secs_f64().max(1e-9);
        wall_s += dt_s;
        wall_p += dt_p;
        let (rate_s, rate_p) = (rest.len() as f64 / dt_s, rest.len() as f64 / dt_p);
        best_s = best_s.max(rate_s);
        best_p = best_p.max(rate_p);
        best_ratio = best_ratio.max(rate_p / rate_s);
    }
    let serial_digests = serial_bank_digests(serial, timed, &out_s);
    let m_s = RunMeasurement {
        wall_s,
        best_rate: best_s,
        hash: pipe_state_hash(&serial_digests, serial),
    };
    let pipe_digests = pipe.bank_digests().to_vec();
    let m_p = RunMeasurement {
        wall_s: wall_p,
        best_rate: best_p,
        hash: pipe_state_hash(&pipe_digests, pipe),
    };
    (m_s, m_p, best_ratio)
}

/// Everything the pipelined-engine benchmark contributes to the recorded
/// entry: its two scaling rows, the gated speedup, the determinism
/// verdicts, and ring-occupancy telemetry from the measured run.
struct PipeOutcome {
    results: Vec<ScalingResult>,
    /// Worker count of the measured (timed) pipelined run.
    jobs: usize,
    speedup: f64,
    /// Serial and pipelined digests of the measured pair agree.
    hashes_equal: bool,
    /// Replays at every [`PIPE_JOBS_SWEEP`] worker count digest equal.
    jobs_hashes_equal: bool,
    ring: RingStats,
    timed: u64,
}

/// Runs the pipelined pair at [`PIPE_BANKS`] banks with the same
/// multi-round paired protocol as the gate sweep, then replays the
/// identical trace at every [`PIPE_JOBS_SWEEP`] worker count and checks
/// the digests against the serial reference.
fn run_pipe_sweep(opts: &Options, scale: PipeScale) -> PipeOutcome {
    let seed = opts.seed ^ 0x919E;
    let reqs = trace(scale.frames, scale.warmup + scale.timed, seed ^ 0xD21E);
    let warmup = scale.warmup as usize;
    let jobs = opts.bank_jobs.max(1);
    let mut best_ratio = -1.0f64;
    let mut kept: Option<(RunMeasurement, RunMeasurement, RingStats)> = None;
    for round in 0..PIPE_ROUNDS {
        let mut serial = build_banked(scale.frames, PIPE_BANKS, seed);
        let mut pipe =
            PipelinedBankedLlc::from_banked(build_banked(scale.frames, PIPE_BANKS, seed), jobs)
                .with_batch_size(PIPE_BATCH);
        let (ms, mp, ratio) = run_pipe_pair(&mut serial, &mut pipe, &reqs, warmup);
        eprintln!(
            "  pipelined{PIPE_BANKS} round {}/{PIPE_ROUNDS}: {:>10.0} serial, {:>10.0} pipelined \
             acc/s, best paired ratio {ratio:.2}x",
            round + 1,
            ms.best_rate,
            mp.best_rate
        );
        if ratio > best_ratio {
            best_ratio = ratio;
            kept = Some((ms, mp, pipe.ring_stats()));
        }
    }
    let (ms, mp, ring) = kept.expect("at least one round ran");
    let hashes_equal = ms.hash == mp.hash;
    let serial_hash = ms.hash;
    let mut results = vec![
        ScalingResult {
            name: format!("pipe{PIPE_BANKS}_serial"),
            banks: PIPE_BANKS,
            jobs: 0,
            accesses: scale.timed,
            wall_s: ms.wall_s,
            accesses_per_sec: ms.best_rate,
            hash: ms.hash,
        },
        ScalingResult {
            name: format!("pipe{PIPE_BANKS}_pipelined_j{jobs}"),
            banks: PIPE_BANKS,
            jobs,
            accesses: scale.timed,
            wall_s: mp.wall_s,
            accesses_per_sec: mp.best_rate,
            hash: mp.hash,
        },
    ];
    for r in &results {
        eprintln!(
            "  {:<24} {:>10.0} acc/s (hash {:#018x})",
            r.name, r.accesses_per_sec, r.hash
        );
    }
    // Determinism across worker counts: replay the identical trace
    // (untimed, arbitrary window chunking — per-bank order is what must
    // hold) at each jobs count and digest-compare against the serial
    // reference.
    let mut jobs_hashes_equal = true;
    for j in PIPE_JOBS_SWEEP {
        let mut pipe =
            PipelinedBankedLlc::from_banked(build_banked(scale.frames, PIPE_BANKS, seed), j)
                .with_batch_size(PIPE_BATCH);
        for chunk in reqs[..warmup].chunks(BATCH) {
            pipe.run_window(chunk);
        }
        pipe.reset_digests();
        for chunk in reqs[warmup..].chunks(BATCH) {
            pipe.run_window(chunk);
        }
        let digests = pipe.bank_digests().to_vec();
        let hash = pipe_state_hash(&digests, &mut pipe);
        let ok = hash == serial_hash;
        jobs_hashes_equal &= ok;
        eprintln!(
            "  pipe{PIPE_BANKS}_j{j} replay hash {hash:#018x} ({})",
            if ok { "== serial" } else { "MISMATCH" }
        );
        results.push(ScalingResult {
            name: format!("pipe{PIPE_BANKS}_replay_j{j}"),
            banks: PIPE_BANKS,
            jobs: j,
            accesses: scale.timed,
            wall_s: 0.0,
            accesses_per_sec: 0.0,
            hash,
        });
    }
    PipeOutcome {
        results,
        jobs,
        speedup: best_ratio,
        hashes_equal,
        jobs_hashes_equal,
        ring,
        timed: scale.timed,
    }
}

/// Checks the pipelined entry's gates: digest equality (always enforced in
/// the failure registry) and the hard [`PIPE_MIN_SPEEDUP`] speedup gate
/// (quick-enforced, like the batched gate; CI re-asserts the recorded
/// entry).
fn check_pipe_gates(opts: &Options, pipe: &PipeOutcome) {
    if !pipe.hashes_equal {
        record_failure(
            "perf-parallel pipelined determinism",
            format!("serial and pipelined digests differ at {PIPE_BANKS} banks"),
        );
    }
    if !pipe.jobs_hashes_equal {
        record_failure(
            "perf-parallel pipelined determinism",
            format!("pipelined digests vary across worker counts {PIPE_JOBS_SWEEP:?}"),
        );
    }
    eprintln!(
        "  gate: {PIPE_BANKS}-bank pipelined/serial speedup {:.2}x \
         (min {PIPE_MIN_SPEEDUP:.1}x, quick-enforced: {})",
        pipe.speedup, opts.quick
    );
    if opts.quick && pipe.speedup < PIPE_MIN_SPEEDUP {
        record_failure(
            "perf-parallel pipelined gate",
            format!(
                "{PIPE_BANKS}-bank pipelined engine reached only {:.2}x \
                 the serial rate (min {PIPE_MIN_SPEEDUP:.1}x)",
                pipe.speedup
            ),
        );
    }
}

/// Checks the determinism digests (always), the quick-mode speedup gate on
/// the paired `speedup` from [`run_sweep`], and the informational 8-bank
/// floor on `speedup8`; returns whether the digests matched.
fn check_gates(opts: &Options, results: &[ScalingResult], speedup: f64, speedup8: f64) -> bool {
    let mut hashes_equal = true;
    for banks in BANK_SWEEP {
        let of: Vec<&ScalingResult> = results.iter().filter(|r| r.banks == banks).collect();
        if of.windows(2).any(|w| w[0].hash != w[1].hash) {
            hashes_equal = false;
            record_failure(
                "perf-parallel determinism",
                format!("serial and batched digests differ at {banks} banks"),
            );
        }
    }
    eprintln!(
        "  gate: {GATE_BANKS}-bank batched/serial speedup {speedup:.2}x \
         (min {GATE_MIN_SPEEDUP:.1}x, quick-enforced: {})",
        opts.quick
    );
    if opts.quick && speedup < GATE_MIN_SPEEDUP {
        record_failure(
            "perf-parallel scaling gate",
            format!(
                "{GATE_BANKS}-bank batched engine reached only {speedup:.2}x \
                 the serial rate (min {GATE_MIN_SPEEDUP:.1}x)"
            ),
        );
    }
    eprintln!(
        "  floor: {FLOOR_BANKS}-bank batched/serial speedup {speedup8:.2}x \
         (informational floor {FLOOR8_MIN_SPEEDUP:.1}x, quick-enforced: {})",
        opts.quick
    );
    if opts.quick && speedup8 < FLOOR8_MIN_SPEEDUP {
        record_failure(
            "perf-parallel 8-bank floor",
            format!(
                "{FLOOR_BANKS}-bank batched engine reached only {speedup8:.2}x \
                 the serial rate (informational floor {FLOOR8_MIN_SPEEDUP:.1}x)"
            ),
        );
    }
    hashes_equal
}

/// Renders one run entry as a JSON object (hand-rolled: the workspace is
/// offline and vendors no serde).
fn render_entry(
    opts: &Options,
    results: &[ScalingResult],
    speedup: f64,
    speedup8: f64,
    equal: bool,
    pipe: &PipeOutcome,
) -> String {
    let mut rec = BenchRecord::new(opts.quick, opts.seed);
    let s = rec.body_mut();
    s.push_str("    \"scaling\": [\n");
    let all: Vec<&ScalingResult> = results.iter().chain(pipe.results.iter()).collect();
    for (i, r) in all.iter().enumerate() {
        let comma = if i + 1 < all.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "      {{\"name\": \"{}\", \"banks\": {}, \"jobs\": {}, \"accesses\": {}, \
             \"wall_s\": {:.6}, \"accesses_per_sec\": {:.1}, \"hash\": \"{:#018x}\"}}{comma}",
            r.name, r.banks, r.jobs, r.accesses, r.wall_s, r.accesses_per_sec, r.hash
        );
    }
    let _ = write!(
        s,
        "    ],\n    \"gate\": {{\"banks\": {GATE_BANKS}, \"speedup\": {speedup:.3}, \
         \"min_speedup\": {GATE_MIN_SPEEDUP:.1}, \"hashes_equal\": {equal}}},\n    \
         \"floor8\": {{\"banks\": {FLOOR_BANKS}, \"speedup\": {speedup8:.3}, \
         \"min_speedup\": {FLOOR8_MIN_SPEEDUP:.1}}},\n    \
         \"pipeline\": {{\"banks\": {PIPE_BANKS}, \"jobs\": {}, \"accesses\": {}, \
         \"batch\": {PIPE_BATCH}, \
         \"speedup\": {:.3}, \"min_speedup\": {PIPE_MIN_SPEEDUP:.1}, \
         \"hashes_equal\": {}, \"jobs_hashes_equal\": {}, \
         \"jobs_sweep\": [1, 2, 4, 8], \
         \"ring_peak_depth\": {}, \"ring_mean_depth\": {:.2}}}",
        pipe.jobs,
        pipe.timed,
        pipe.speedup,
        pipe.hashes_equal,
        pipe.jobs_hashes_equal,
        pipe.ring.peak_depth,
        pipe.ring.mean_depth()
    );
    rec.finish()
}

/// The `perf-parallel` subcommand: runs the sweep and appends the results
/// to `BENCH_parallel.json` in the current directory (the repo root in CI
/// and normal use).
pub fn perf_parallel(opts: &Options) {
    perf_parallel_to(opts, Path::new("BENCH_parallel.json"));
}

/// [`perf_parallel`] writing the trajectory to an explicit path (test
/// support).
pub fn perf_parallel_to(opts: &Options, path: &Path) {
    println!(
        "perf-parallel: bank-sharding scaling ({} scale)",
        if opts.quick { "quick" } else { "full" }
    );
    let (results, speedup, speedup8) = run_sweep(opts, Scale::from_options(opts));
    let equal = check_gates(opts, &results, speedup, speedup8);
    println!("perf-parallel: pipelined ring engine at {PIPE_BANKS} banks");
    let pipe = run_pipe_sweep(opts, PipeScale::from_options(opts));
    check_pipe_gates(opts, &pipe);
    let entry = render_entry(opts, &results, speedup, speedup8, equal, &pipe);
    match vantage_bench::append_entry(path, &entry) {
        Ok(()) => println!("  wrote {}", path.display()),
        Err(e) => record_failure(path.display().to_string(), e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_batched_digests_agree_at_tiny_scale() {
        let scale = Scale {
            frames: 2 * 1024,
            warmup: 4_000,
            timed: 8_000,
        };
        let seed = 7;
        let reqs = trace(scale.frames, scale.warmup + scale.timed, seed);
        let warmup = scale.warmup as usize;
        for jobs in [1, 2] {
            let mut serial = build_banked(scale.frames, 4, seed);
            let mut par = ParallelBankedLlc::from_banked(build_banked(scale.frames, 4, seed), jobs);
            let (ms, mb, _ratio) = run_pair(&mut serial, &mut par, &reqs, warmup);
            assert_eq!(ms.hash, mb.hash, "jobs={jobs} diverged from serial");
        }
    }

    #[test]
    fn serial_and_pipelined_digests_agree_at_tiny_scale() {
        let scale = PipeScale {
            frames: 2 * 1024,
            warmup: 4_000,
            timed: 8_000,
        };
        let seed = 7;
        let reqs = trace(scale.frames, scale.warmup + scale.timed, seed);
        let warmup = scale.warmup as usize;
        for jobs in [1, 2] {
            let mut serial = build_banked(scale.frames, 4, seed);
            let mut pipe =
                PipelinedBankedLlc::from_banked(build_banked(scale.frames, 4, seed), jobs);
            let (ms, mp, _ratio) = run_pipe_pair(&mut serial, &mut pipe, &reqs, warmup);
            assert_eq!(ms.hash, mp.hash, "jobs={jobs} diverged from serial");
        }
    }

    #[test]
    fn trajectory_entry_records_the_gate() {
        let opts = Options {
            quick: true,
            ..Options::default()
        };
        let results = vec![ScalingResult {
            name: "banked4_serial".into(),
            banks: 4,
            jobs: 0,
            accesses: 10,
            wall_s: 0.5,
            accesses_per_sec: 20.0,
            hash: 0xABCD,
        }];
        let pipe = PipeOutcome {
            results: vec![ScalingResult {
                name: "pipe8_pipelined_j1".into(),
                banks: 8,
                jobs: 1,
                accesses: 10,
                wall_s: 0.2,
                accesses_per_sec: 50.0,
                hash: 0xABCD,
            }],
            jobs: 1,
            speedup: 2.61,
            hashes_equal: true,
            jobs_hashes_equal: true,
            ring: RingStats {
                peak_depth: 3,
                depth_sum: 10,
                samples: 5,
            },
            timed: 10,
        };
        let entry = render_entry(&opts, &results, 2.5, 1.7, true, &pipe);
        assert!(entry.contains("\"scaling\""));
        assert!(entry.contains("\"speedup\": 2.500"));
        assert!(entry.contains("\"hashes_equal\": true"));
        assert!(entry.contains("0x000000000000abcd"));
        assert!(entry.contains("\"floor8\""));
        assert!(entry.contains("\"speedup\": 1.700"));
        assert!(entry.contains("\"pipeline\""));
        assert!(entry.contains("\"speedup\": 2.610"));
        assert!(entry.contains("\"min_speedup\": 2.5"));
        assert!(entry.contains("\"jobs_hashes_equal\": true"));
        assert!(entry.contains(&format!("\"batch\": {PIPE_BATCH}")));
        assert!(entry.contains("\"ring_peak_depth\": 3"));
        assert!(entry.contains("pipe8_pipelined_j1"));
    }
}
