//! Graceful SIGINT/SIGTERM handling for long experiment sweeps.
//!
//! [`install`] registers an async-signal-safe handler that records the
//! signal in an atomic; long-running loops poll [`pending`] at safe
//! boundaries (an epoch chunk, a finished mix), wind down cleanly — final
//! checkpoint, partial CSV artifacts — and the CLI exits with the
//! conventional `128 + signo` status so wrappers can tell an interrupted
//! run from a failed one.
//!
//! The handler is registered via raw `signal(2)` FFI — the workspace
//! vendors no libc crate — and only on Unix; elsewhere [`install`] is a
//! no-op and [`pending`] never fires.

use std::sync::atomic::{AtomicI32, Ordering};

/// The last terminating signal received (0 = none).
static PENDING: AtomicI32 = AtomicI32::new(0);

/// `SIGINT` on every Unix the simulator targets.
pub const SIGINT: i32 = 2;
/// `SIGTERM` on every Unix the simulator targets.
pub const SIGTERM: i32 = 15;

#[cfg(unix)]
mod imp {
    use super::PENDING;
    use std::sync::atomic::Ordering;

    unsafe extern "C" {
        /// POSIX `signal(2)`. Handlers are passed as `usize` so the
        /// binding needs no libc types.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    /// Stores the signal number; nothing else, so it stays
    /// async-signal-safe.
    extern "C" fn on_signal(signo: i32) {
        PENDING.store(signo, Ordering::SeqCst);
    }

    pub fn install(signo: i32) {
        unsafe {
            signal(signo, on_signal as extern "C" fn(i32) as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install(_signo: i32) {}
}

/// Registers the graceful handler for SIGINT and SIGTERM. Idempotent.
pub fn install() {
    imp::install(SIGINT);
    imp::install(SIGTERM);
}

/// The terminating signal received so far, if any. Loops poll this at
/// safe boundaries and wind down when it fires.
pub fn pending() -> Option<i32> {
    match PENDING.load(Ordering::SeqCst) {
        0 => None,
        s => Some(s),
    }
}

/// The conventional exit status for a run ended by signal `signo`.
pub fn exit_status(signo: i32) -> i32 {
    128 + signo
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test, not several: the pending flag is process-global, so
    // splitting these assertions across tests would race under the
    // parallel test harness.
    #[test]
    fn handler_round_trip() {
        install();
        assert_eq!(pending(), None);
        assert_eq!(exit_status(SIGINT), 130);
        assert_eq!(exit_status(SIGTERM), 143);

        // Actually deliver a SIGINT to this process through the installed
        // handler (Unix only; the raise round-trip is the point).
        #[cfg(unix)]
        {
            unsafe extern "C" {
                fn raise(signo: i32) -> i32;
            }
            unsafe {
                raise(SIGINT);
            }
            assert_eq!(pending(), Some(SIGINT));
            super::PENDING.store(0, std::sync::atomic::Ordering::SeqCst);
        }
    }
}
