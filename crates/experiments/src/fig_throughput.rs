//! Throughput comparisons: Fig. 6a (4-core, all mixes), Fig. 6b (selected
//! mixes) and Fig. 7 (32-core scalability).

use vantage_sim::{ArrayKind, BaselineRank, SchemeKind, SystemConfig};
use vantage_workloads::mixes;

use crate::common::{
    ascii_distribution, print_summaries, run_comparison_jobs, sorted_curves_csv, summarize,
    write_csv, Options,
};

fn baseline_sa(ways: usize) -> SchemeKind {
    SchemeKind::Baseline {
        array: ArrayKind::SetAssoc { ways },
        rank: BaselineRank::Lru,
    }
}

/// Fig. 6a: Vantage-Z4/52 vs PIPP-SA16 vs WayPart-SA16 on the 4-core
/// machine, normalized to an unpartitioned 16-way LRU cache.
pub fn fig6a(opts: &Options) {
    println!("== Fig. 6a: 4-core throughput vs unpartitioned LRU-SA16 ==");
    let mut sys = opts.machine(SystemConfig::small_scale());
    sys.seed = opts.seed;
    sys.instructions = opts.instructions_for(&sys);
    let all = mixes(4, opts.mixes_per_class, opts.seed);
    println!(
        "  {} mixes × 4 configurations, {} instrs/core",
        all.len(),
        sys.instructions
    );

    let schemes = vec![
        SchemeKind::WayPart,
        SchemeKind::Pipp,
        SchemeKind::vantage_paper(),
    ];
    let labels: Vec<String> = schemes.iter().map(SchemeKind::label).collect();
    let outcomes = run_comparison_jobs(
        &sys,
        &baseline_sa(16),
        &schemes,
        &all,
        true,
        opts.jobs,
        opts.telemetry.as_deref(),
    );

    let summaries: Vec<_> = labels
        .iter()
        .enumerate()
        .map(|(s, l)| summarize(l, &outcomes, s))
        .collect();
    print_summaries("Fig. 6a summary (normalized throughput):", &summaries);
    println!("\n  distribution of normalized throughput:");
    for (s, l) in labels.iter().enumerate() {
        let vals: Vec<f64> = outcomes.iter().map(|o| o.normalized(s)).collect();
        ascii_distribution(l, &vals);
    }
    println!(
        "\n  paper shape: WayPart/PIPP degrade ~45% of workloads; Vantage improves\n  \
         nearly all (geomean +6.2%, up to +40%), using 4 ways instead of 16."
    );

    let (header, rows) = sorted_curves_csv(&outcomes, &labels);
    write_csv(&opts.out_dir, "fig6a_sorted_curves", &header, &rows);
    let raw: Vec<String> = outcomes
        .iter()
        .map(|o| {
            format!(
                "{},{:.4},{}",
                o.mix,
                o.base_throughput,
                (0..labels.len())
                    .map(|s| format!("{:.4}", o.throughput[s]))
                    .collect::<Vec<_>>()
                    .join(",")
            )
        })
        .collect();
    write_csv(
        &opts.out_dir,
        "fig6a_raw",
        &format!("mix,base,{}", labels.join(",")),
        &raw,
    );
}

/// Fig. 6b: selected mixes, including an unpartitioned Z4/52 zcache to
/// separate "zcache associativity" gains from "partitioning" gains.
pub fn fig6b(opts: &Options) {
    println!("== Fig. 6b: selected 4-core mixes ==");
    let mut sys = opts.machine(SystemConfig::small_scale());
    sys.seed = opts.seed;
    sys.instructions = opts.instructions_for(&sys);
    let all = mixes(4, opts.mixes_per_class.max(1), opts.seed);
    // The paper highlights these classes.
    let wanted = [
        "sftn", "ffft", "ssst", "fffn", "ffnn", "ttnn", "sfff", "sssf",
    ];
    let selected: Vec<_> = wanted
        .iter()
        .filter_map(|w| all.iter().find(|m| m.name.starts_with(w)).cloned())
        .collect();

    let schemes = vec![
        SchemeKind::Baseline {
            array: ArrayKind::Z4_52,
            rank: BaselineRank::Lru,
        },
        SchemeKind::WayPart,
        SchemeKind::Pipp,
        SchemeKind::vantage_paper(),
    ];
    let labels: Vec<String> = schemes.iter().map(SchemeKind::label).collect();
    let outcomes = run_comparison_jobs(
        &sys,
        &baseline_sa(16),
        &schemes,
        &selected,
        false,
        opts.jobs,
        opts.telemetry.as_deref(),
    );

    println!(
        "  {:<8} {}",
        "mix",
        labels
            .iter()
            .map(|l| format!("{l:>18}"))
            .collect::<String>()
    );
    let mut rows = Vec::new();
    for o in &outcomes {
        print!("  {:<8}", o.mix);
        for s in 0..labels.len() {
            print!(" {:>16.1}%", (o.normalized(s) - 1.0) * 100.0);
        }
        println!();
        rows.push(format!(
            "{},{}",
            o.mix,
            (0..labels.len())
                .map(|s| format!("{:.4}", o.normalized(s)))
                .collect::<Vec<_>>()
                .join(",")
        ));
    }
    write_csv(
        &opts.out_dir,
        "fig6b_selected",
        &format!("mix,{}", labels.join(",")),
        &rows,
    );
    println!("  paper shape: most gains come from partitioning, not the zcache alone.");
}

/// Fig. 7: the 32-core scalability result — Vantage keeps its gains with a
/// 4-way zcache while WayPart/PIPP degrade even with 64 ways.
pub fn fig7(opts: &Options) {
    println!("== Fig. 7: 32-core throughput vs unpartitioned LRU-SA64 ==");
    let mut sys = opts.machine(SystemConfig::large_scale());
    sys.seed = opts.seed;
    sys.instructions = opts.instructions_for(&sys);
    let all = mixes(32, opts.mixes_per_class, opts.seed);
    println!(
        "  {} mixes × 4 configurations, {} instrs/core",
        all.len(),
        sys.instructions
    );

    let schemes = vec![
        SchemeKind::WayPart,
        SchemeKind::Pipp,
        SchemeKind::vantage_paper(),
    ];
    let labels: Vec<String> = schemes.iter().map(SchemeKind::label).collect();
    let outcomes = run_comparison_jobs(
        &sys,
        &baseline_sa(64),
        &schemes,
        &all,
        true,
        opts.jobs,
        opts.telemetry.as_deref(),
    );

    let summaries: Vec<_> = labels
        .iter()
        .enumerate()
        .map(|(s, l)| summarize(l, &outcomes, s))
        .collect();
    print_summaries(
        "Fig. 7 summary (normalized throughput, 32 partitions):",
        &summaries,
    );
    println!("\n  distribution of normalized throughput:");
    for (s, l) in labels.iter().enumerate() {
        let vals: Vec<f64> = outcomes.iter().map(|o| o.normalized(s)).collect();
        ascii_distribution(l, &vals);
    }
    println!(
        "\n  paper shape: WayPart and (especially) PIPP degrade most workloads at 32\n  \
         partitions even with 64 ways; Vantage stays positive (geomean +8%, up to +20%)\n  \
         with a 4-way zcache."
    );

    let (header, rows) = sorted_curves_csv(&outcomes, &labels);
    write_csv(&opts.out_dir, "fig7_sorted_curves", &header, &rows);
}
