//! Monte-Carlo validation of the analytical models: empirical
//! associativity distributions measured on real arrays (Fig. 1) and on the
//! managed/unmanaged region abstraction (Fig. 2).
//!
//! Eviction priority is defined as in the zcache framework: a line's *rank
//! under the replacement policy among the lines currently resident*,
//! normalized to `[0, 1]` (1.0 = evict first). Ranks are uniformly
//! distributed at every instant by construction, which is what makes
//! `FA(x) = x^R` the right reference. We track age ranks with a Fenwick
//! tree over insertion stamps.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vantage_cache::{CacheArray, LineAddr, Walk, ZArray};

/// A Fenwick (binary indexed) tree counting stamps, used to turn a stamp
/// into its age rank among live stamps in O(log n).
struct Fenwick {
    tree: Vec<u32>,
    counts: Vec<u32>,
}

impl Fenwick {
    fn new(capacity: usize) -> Self {
        Self {
            tree: vec![0; capacity + 1],
            counts: vec![0; capacity],
        }
    }

    fn add(&mut self, i: usize, delta: i32) {
        if i >= self.counts.len() {
            // Grow and rebuild (rare; growth is amortized by doubling).
            let new_len = (i + 1).next_power_of_two() * 2;
            self.counts.resize(new_len, 0);
            self.counts[i] = (self.counts[i] as i32 + delta) as u32;
            self.tree = vec![0; new_len + 1];
            for (j, &c) in self.counts.iter().enumerate() {
                if c > 0 {
                    let mut k = j + 1;
                    while k < self.tree.len() {
                        self.tree[k] += c;
                        k += k & k.wrapping_neg();
                    }
                }
            }
            return;
        }
        self.counts[i] = (self.counts[i] as i32 + delta) as u32;
        let mut i = i + 1;
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i32 + delta) as u32;
            i += i & i.wrapping_neg();
        }
    }

    /// Number of live stamps strictly less than `i`.
    fn count_less(&self, i: usize) -> u32 {
        let mut i = i; // prefix sum over [0, i)
        let mut s = 0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }
}

/// Measures the empirical eviction-priority CDF of a zcache with `r`
/// candidates under FIFO-stamp ranking (LRU with a no-reuse stream):
/// every replacement evicts the oldest candidate, and the evicted line's
/// age rank among all resident lines is collected. Returns the CDF sampled
/// at `points + 1` evenly spaced priorities.
pub fn zcache_eviction_cdf(r: usize, replacements: usize, points: usize, seed: u64) -> Vec<f64> {
    let frames = 16 * 1024;
    let array = ZArray::new(frames, 4, r, seed);
    array_eviction_cdf(Box::new(array), frames, replacements, points, seed)
}

/// Same measurement on the idealized uniform-random-candidates array; this
/// validates the measurement and the model exactly (the `FA(x) = x^R`
/// derivation assumes precisely this array).
pub fn random_array_eviction_cdf(
    r: usize,
    replacements: usize,
    points: usize,
    seed: u64,
) -> Vec<f64> {
    let frames = 16 * 1024;
    let array = vantage_cache::RandomArray::new(frames, r, seed);
    array_eviction_cdf(Box::new(array), frames, replacements, points, seed)
}

/// Rank-based eviction-priority CDF measurement over any array.
fn array_eviction_cdf(
    mut boxed: Box<dyn CacheArray>,
    frames: usize,
    replacements: usize,
    points: usize,
    seed: u64,
) -> Vec<f64> {
    let array = boxed.as_mut();
    let mut stamp_of = vec![0usize; frames];
    let mut fen = Fenwick::new(frames + replacements + 1);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x51AB);
    let mut walk = Walk::new();
    let mut moves = Vec::new();
    let mut next_stamp = 0usize;

    // Fill with unique random lines.
    while array.occupancy() < frames {
        let addr = LineAddr(rng.gen::<u64>() >> 1);
        if array.lookup(addr).is_some() {
            continue;
        }
        array.walk(addr, &mut walk);
        let v = match walk.first_empty() {
            Some(v) => v,
            None => {
                // Rare hash-conflict eviction during fill: retire the
                // victim's stamp so ranks stay consistent.
                fen.add(stamp_of[walk.nodes[0].frame as usize], -1);
                0
            }
        };
        moves.clear();
        let landing = array.install(addr, &walk, v, &mut moves);
        for &(from, to) in &moves {
            stamp_of[to as usize] = stamp_of[from as usize];
        }
        stamp_of[landing as usize] = next_stamp;
        fen.add(next_stamp, 1);
        next_stamp += 1;
    }

    // Measure: evict the oldest candidate; record its age rank.
    let mut samples = Vec::with_capacity(replacements);
    while samples.len() < replacements {
        let addr = LineAddr(rng.gen::<u64>() >> 1);
        if array.lookup(addr).is_some() {
            continue; // 2^-40ish; skip rather than double-install
        }
        array.walk(addr, &mut walk);
        let victim = walk
            .occupied()
            .min_by_key(|(_, n)| stamp_of[n.frame as usize])
            .map(|(i, _)| i)
            .expect("full array");
        let vstamp = stamp_of[walk.nodes[victim].frame as usize];
        let older = fen.count_less(vstamp) as f64;
        // Eviction priority: fraction of lines at least as old (oldest → 1).
        samples.push((frames as f64 - older) / frames as f64);
        fen.add(vstamp, -1);
        moves.clear();
        let landing = array.install(addr, &walk, victim, &mut moves);
        for &(from, to) in &moves {
            stamp_of[to as usize] = stamp_of[from as usize];
        }
        stamp_of[landing as usize] = next_stamp;
        fen.add(next_stamp, 1);
        next_stamp += 1;
    }
    empirical_cdf(&samples, points)
}

/// Demotion policy for the managed-region Monte Carlo.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DemotionPolicy {
    /// Demote exactly the best managed candidate on every eviction (Eq. 2).
    ExactlyOne,
    /// Demote every managed candidate with rank above `1 - aperture`
    /// (Eq. 3).
    Aperture(f64),
}

/// Simulates the managed/unmanaged division at the rank level: `n` lines,
/// fraction `u` unmanaged, `r` uniform candidates per replacement, FIFO
/// age ranks within the managed region. Returns the empirical CDF of
/// demoted priorities (ranks among managed lines at demotion time).
pub fn managed_demotion_cdf(
    n: usize,
    u: f64,
    r: usize,
    policy: DemotionPolicy,
    replacements: usize,
    points: usize,
    seed: u64,
) -> Vec<f64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut managed = vec![false; n];
    let mut stamp = vec![0usize; n];
    let mut fen = Fenwick::new(n + 2 * replacements + 1);
    let mut next_stamp = 0usize;
    let mut managed_count = 0u64;

    // Initialize: (1-u)·n managed lines with increasing stamps.
    for i in 0..n {
        if (i as f64) < (1.0 - u) * n as f64 {
            managed[i] = true;
            stamp[i] = next_stamp;
            fen.add(next_stamp, 1);
            next_stamp += 1;
            managed_count += 1;
        }
    }

    let mut samples = Vec::new();
    let mut cands: Vec<usize> = Vec::with_capacity(r);
    for _ in 0..replacements {
        cands.clear();
        while cands.len() < r {
            let i = rng.gen_range(0..n);
            if !cands.contains(&i) {
                cands.push(i);
            }
        }
        // Rank of a managed line: fraction of managed lines at least as old.
        let rank = |fen: &Fenwick, s: usize, mc: u64| {
            let older = fen.count_less(s) as f64;
            (mc as f64 - older) / mc as f64
        };
        match policy {
            DemotionPolicy::ExactlyOne => {
                if let Some(&best) = cands
                    .iter()
                    .filter(|&&i| managed[i])
                    .min_by_key(|&&i| stamp[i])
                {
                    samples.push(rank(&fen, stamp[best], managed_count));
                    managed[best] = false;
                    fen.add(stamp[best], -1);
                    managed_count -= 1;
                }
            }
            DemotionPolicy::Aperture(a) => {
                for &i in &cands {
                    if managed[i] {
                        let e = rank(&fen, stamp[i], managed_count);
                        if e > 1.0 - a {
                            samples.push(e);
                            managed[i] = false;
                            fen.add(stamp[i], -1);
                            managed_count -= 1;
                        }
                    }
                }
            }
        }
        // Evict the oldest unmanaged candidate and insert a fresh managed
        // line there (fills go to the managed region, as in Vantage).
        if let Some(&evict) = cands
            .iter()
            .filter(|&&i| !managed[i])
            .min_by_key(|&&i| stamp[i])
        {
            managed[evict] = true;
            stamp[evict] = next_stamp;
            fen.add(next_stamp, 1);
            next_stamp += 1;
            managed_count += 1;
        }
    }
    empirical_cdf(&samples, points)
}

/// Empirical CDF of `samples` at `points + 1` evenly spaced x positions.
pub fn empirical_cdf(samples: &[f64], points: usize) -> Vec<f64> {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    (0..=points)
        .map(|i| {
            let x = i as f64 / points as f64;
            let idx = sorted.partition_point(|&s| s <= x);
            idx as f64 / sorted.len().max(1) as f64
        })
        .collect()
}

/// Maximum absolute deviation between two equally-sampled CDFs.
pub fn max_deviation(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vantage::model::assoc;

    #[test]
    fn zcache_tracks_fa_model_and_random_array_matches_it() {
        // The core uniformity claim (§3.2): candidates behave like a
        // uniform sample. The idealized random array matches FA exactly;
        // the zcache is close, with a bounded tail deviation under this
        // adversarial evict-the-global-oldest, no-reuse stress (deep-walk
        // in-degree variance; see fig1's note).
        let emp = zcache_eviction_cdf(16, 30_000, 50, 1);
        let ideal = random_array_eviction_cdf(16, 30_000, 50, 1);
        let model: Vec<f64> = (0..=50).map(|i| assoc::cdf(i as f64 / 50.0, 16)).collect();
        assert!(
            max_deviation(&ideal, &model) < 0.03,
            "random array must match FA exactly: {}",
            max_deviation(&ideal, &model)
        );
        let dev = max_deviation(&emp, &model);
        assert!(dev < 0.25, "Z4/16 deviates from FA by {dev}");
        // And the zcache is far closer to x^16 than to a low-associativity
        // reference like x^4.
        let weak: Vec<f64> = (0..=50).map(|i| assoc::cdf(i as f64 / 50.0, 4)).collect();
        assert!(
            max_deviation(&emp, &weak) > 2.0 * dev,
            "zcache should look ~16-way"
        );
    }

    #[test]
    fn managed_mc_matches_eq3() {
        use vantage::model::managed;
        let a = managed::balanced_aperture(16, 0.7);
        let emp = managed_demotion_cdf(8192, 0.3, 16, DemotionPolicy::Aperture(a), 60_000, 50, 2);
        let model: Vec<f64> = (0..=50)
            .map(|i| managed::average_demotion_cdf(i as f64 / 50.0, a))
            .collect();
        let dev = max_deviation(&emp, &model);
        assert!(dev < 0.06, "aperture MC deviates from Eq. 3 by {dev}");
    }

    #[test]
    fn managed_mc_matches_eq2() {
        use vantage::model::managed;
        let emp = managed_demotion_cdf(8192, 0.3, 16, DemotionPolicy::ExactlyOne, 60_000, 50, 3);
        let model: Vec<f64> = (0..=50)
            .map(|i| managed::one_demotion_cdf(i as f64 / 50.0, 16, 0.3))
            .collect();
        let dev = max_deviation(&emp, &model);
        assert!(dev < 0.08, "exactly-one MC deviates from Eq. 2 by {dev}");
    }

    #[test]
    fn empirical_cdf_shape() {
        let cdf = empirical_cdf(&[0.1, 0.5, 0.9], 10);
        assert_eq!(cdf[0], 0.0);
        assert_eq!(cdf[10], 1.0);
        assert!((cdf[5] - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn fenwick_counts() {
        let mut f = Fenwick::new(10);
        f.add(3, 1);
        f.add(7, 1);
        assert_eq!(f.count_less(3), 0);
        assert_eq!(f.count_less(4), 1);
        assert_eq!(f.count_less(8), 2);
        f.add(3, -1);
        assert_eq!(f.count_less(8), 1);
    }
}
