//! The `run` subcommand: one managed simulation with crash-safe
//! checkpointing, resume, and deterministic fork-sweeps.
//!
//! ```text
//! vantage-experiments run [--checkpoint PATH] [--resume PATH] [--fork-sweep]
//!                         [--stop-after N] [--policy P] [usual options]
//! ```
//!
//! * `--checkpoint PATH` — auto-checkpoint to `PATH` periodically
//!   (atomically: temp + fsync + rename), so a killed run resumes from
//!   near where it died.
//! * `--resume PATH` — restore simulation state from `PATH` before running.
//!   The machine flags must match the checkpointed run; `--policy` may
//!   differ, in which case the run hot-swaps the allocation policy through
//!   the guarded [`CmpSim::reconfigure`] path after restoring.
//! * `--fork-sweep` — warm once (or restore `--resume`), then fork the
//!   warmed state into every allocation policy and run each variant to
//!   completion from the identical warmed cache.
//! * `--stop-after N` — pause at the first chunk boundary at or past `N`
//!   simulation steps, write the checkpoint, and exit; the CI smoke uses
//!   this for deterministic mid-run checkpoints.
//!
//! On SIGINT/SIGTERM the in-flight epoch finishes, a final checkpoint and
//! the partial CSV are written, and the process exits `128 + signo`.

use std::path::Path;

use vantage_sim::{CmpSim, PolicyKind, Reconfig, SchemeKind, SimResult, SystemConfig};
use vantage_snapshot::SnapshotReader;
use vantage_workloads::{mixes, Mix};

use crate::common::{install_telemetry, record_failure, write_csv, Options};
use crate::signal;

const CSV_HEADER: &str =
    "mix,scheme,policy,steps,throughput,l2_accesses,l2_misses,recoveries,rollbacks";

fn csv_row(mix: &str, label: &str, policy: PolicyKind, steps: u64, r: &SimResult) -> String {
    format!(
        "{mix},{label},{},{steps},{:.17e},{},{},{},{}",
        policy.label(),
        r.throughput,
        r.l2_accesses.iter().sum::<u64>(),
        r.l2_misses.iter().sum::<u64>(),
        r.invariant_recoveries,
        r.reconfig_rollbacks,
    )
}

/// Restores `sim` from the checkpoint file at `path`, then hot-swaps the
/// allocation policy to `want` if the checkpoint carried a different one.
/// Failures are recorded (keep-going) and reported as `false`.
fn resume_into(sim: &mut CmpSim, path: &Path, want: PolicyKind) -> bool {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            record_failure(path.display().to_string(), e.to_string());
            return false;
        }
    };
    let reader = match SnapshotReader::from_bytes(&bytes) {
        Ok(r) => r,
        Err(e) => {
            record_failure(path.display().to_string(), e.to_string());
            return false;
        }
    };
    if let Err(e) = sim.restore_checkpoint(&reader) {
        record_failure(path.display().to_string(), e.to_string());
        return false;
    }
    println!("  resumed from {} at step {}", path.display(), sim.steps());
    if sim
        .epoch()
        .active_policy()
        .is_some_and(|a| a.kind() != want)
    {
        if let Err(e) = sim.reconfigure(&Reconfig::Policy(want)) {
            record_failure(path.display().to_string(), format!("policy swap: {e}"));
            return false;
        }
        println!("  hot-swapped allocation policy to {}", want.label());
    }
    true
}

/// Saves a checkpoint, recording (not propagating) failures.
fn save(sim: &CmpSim, path: &Path) {
    if let Err(e) = sim.save_checkpoint(path) {
        record_failure(path.display().to_string(), e.to_string());
    }
}

/// The machine and workload for the `run` subcommand.
fn setup(opts: &Options) -> (SystemConfig, SchemeKind, Mix) {
    let mut sys = opts.machine(SystemConfig::small_scale());
    sys.instructions = opts.instructions_for(&sys);
    let kind = SchemeKind::vantage_paper();
    let mix = mixes(sys.cores, 1, opts.seed).swap_remove(0);
    (sys, kind, mix)
}

/// The `run` subcommand (see the module docs).
pub fn run(opts: &Options) {
    if opts.fork_sweep {
        fork_sweep(opts);
        return;
    }
    let (sys, kind, mix) = setup(opts);
    println!(
        "run: {} on {} ({} policy)",
        mix.name,
        kind.label(),
        opts.policy.label()
    );
    let mut sim = CmpSim::new(sys.clone(), &kind, &mix);
    install_telemetry(&mut sim, opts.telemetry.as_deref(), &mix);
    if let Some(from) = &opts.resume {
        if !resume_into(&mut sim, from, opts.policy) {
            return;
        }
    }

    // The run proceeds in fixed step chunks; signals and `--stop-after`
    // are honored between chunks, and `--checkpoint` saves after each one
    // (every boundary is an exact resume point, so cadence is about
    // recency, not safety). A signal does not stop the run immediately:
    // it arms the next repartitioning boundary, so the in-flight epoch
    // finishes before the final checkpoint is cut.
    let chunk = 16_384;
    let mut armed_boundary: Option<u64> = None;
    let result = loop {
        let r = match sim.try_run_for(chunk) {
            Ok(r) => r,
            Err(e) => {
                record_failure(format!("mix {}", mix.name), e.to_string());
                return;
            }
        };
        if let Some(result) = r {
            break Some(result);
        }
        if let Some(path) = &opts.checkpoint {
            save(&sim, path);
        }
        if let (None, Some(signo)) = (armed_boundary, signal::pending()) {
            println!("  signal {signo}: finishing the in-flight epoch");
            armed_boundary = Some(sim.epoch().next_at());
        }
        if armed_boundary.is_some_and(|b| sim.epoch().next_at() > b) {
            println!("  epoch finished; stopping at step {}", sim.steps());
            break None;
        }
        if opts.stop_after.is_some_and(|n| sim.steps() >= n) {
            println!("  --stop-after: pausing at step {}", sim.steps());
            break None;
        }
    };
    if let Some(path) = &opts.checkpoint {
        save(&sim, path);
        println!("  checkpoint -> {}", path.display());
    }
    crate::common::retire_telemetry(&mut sim, &mix);
    match result {
        Some(r) => {
            let row = csv_row(&mix.name, &r.label, opts.policy, sim.steps(), &r);
            write_csv(&opts.out_dir, "run", CSV_HEADER, &[row]);
        }
        None => {
            // Interrupted or paused: a partial artifact records how far the
            // run got, and the checkpoint above carries the state itself.
            let row = format!(
                "{},{},{},{}",
                mix.name,
                sim.label(),
                sim.steps(),
                sim.is_finished()
            );
            write_csv(
                &opts.out_dir,
                "run_partial",
                "mix,scheme,steps,finished",
                &[row],
            );
        }
    }
}

/// `run --fork-sweep`: every allocation policy, forked from one warmed
/// state. With `--resume` the shared warmup is the given checkpoint;
/// otherwise a fresh sim is warmed for four epochs (and saved to
/// `--checkpoint`, when given, so later sweeps can reuse it).
fn fork_sweep(opts: &Options) {
    let (sys, kind, mix) = setup(opts);
    println!("run --fork-sweep: {} on {}", mix.name, kind.label());
    let bytes = match &opts.resume {
        Some(path) => match std::fs::read(path) {
            Ok(b) => b,
            Err(e) => {
                record_failure(path.display().to_string(), e.to_string());
                return;
            }
        },
        None => {
            // Warm through the first repartitioning epoch, so every fork
            // starts from a state where the policies actually differ.
            let mut warm = CmpSim::new(sys.clone(), &kind, &mix);
            let first_epoch = warm.epoch().next_at();
            loop {
                match warm.try_run_for(16_384) {
                    Ok(Some(_)) => {
                        println!("  warmup ran to completion; forking the final state");
                        break;
                    }
                    Ok(None) => {
                        if warm.epoch().next_at() > first_epoch {
                            println!("  warmed for {} steps (one epoch)", warm.steps());
                            break;
                        }
                    }
                    Err(e) => {
                        record_failure(format!("mix {}", mix.name), e.to_string());
                        return;
                    }
                }
            }
            if let Some(path) = &opts.checkpoint {
                save(&warm, path);
                println!("  warmup checkpoint -> {}", path.display());
            }
            warm.write_checkpoint().to_bytes()
        }
    };
    let reader = match SnapshotReader::from_bytes(&bytes) {
        Ok(r) => r,
        Err(e) => {
            record_failure("fork-sweep checkpoint", e.to_string());
            return;
        }
    };

    let mut rows = Vec::new();
    for policy in PolicyKind::ALL {
        if let Some(signo) = signal::pending() {
            println!(
                "  signal {signo}: stopping the sweep after {} variants",
                rows.len()
            );
            break;
        }
        // Build the fork with the target policy in its config so its label
        // (and any policy-dependent defaults) match a run that was given
        // `--policy` directly; the restore then overwrites all state and
        // the hot-swap below installs the policy itself.
        let mut fsys = sys.clone();
        fsys.policy = policy;
        let mut fork = CmpSim::new(fsys, &kind, &mix);
        if let Err(e) = fork.restore_checkpoint(&reader) {
            record_failure(format!("fork {}", policy.label()), e.to_string());
            continue;
        }
        if fork
            .epoch()
            .active_policy()
            .is_some_and(|a| a.kind() != policy)
        {
            if let Err(e) = fork.reconfigure(&Reconfig::Policy(policy)) {
                record_failure(format!("fork {}", policy.label()), e.to_string());
                continue;
            }
        }
        match fork.try_run() {
            Ok(r) => {
                println!(
                    "  {:<10} throughput {:.4}  misses {}",
                    policy.label(),
                    r.throughput,
                    r.l2_misses.iter().sum::<u64>()
                );
                rows.push(csv_row(&mix.name, &r.label, policy, fork.steps(), &r));
            }
            Err(e) => record_failure(format!("fork {}", policy.label()), e.to_string()),
        }
    }
    write_csv(&opts.out_dir, "fork_sweep", CSV_HEADER, &rows);
}
