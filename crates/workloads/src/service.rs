//! Service-mode workload: a churning population of cache tenants.
//!
//! The paper's evaluation runs fixed multiprogrammed mixes — one
//! partition per core for the whole run. A consolidated service (the
//! motivating deployment for fine-grain partitioning at scale) looks
//! different: tenants arrive, run for a while, and leave; traffic is
//! heavily skewed toward a few hot tenants; and load swings with the
//! time of day. [`TenantChurn`] models exactly that:
//!
//! * **Arrivals** follow a Poisson process (exponential inter-arrival
//!   gaps); **lifetimes** are exponential, so departures are memoryless
//!   too. Admission is capped at `max_tenants` — arrivals past the cap
//!   are rejected and re-scheduled.
//! * **Popularity** is Zipfian over the live population by arrival
//!   order: tenant at seniority rank `r` carries weight `1/r^s`.
//! * **Diurnal load**: each tenant's traffic is modulated by a sinusoid
//!   with a per-tenant phase, so different tenants peak at different
//!   times and the mix of hot tenants rotates over a period.
//! * **Addresses**: each tenant owns a private footprint and reuses it
//!   with a hot head (`line = footprint · u³`), so tenants benefit from
//!   capacity without thrashing.
//!
//! Determinism is structural: every random draw is `mix64(seed ^ n)`
//! for a monotone draw counter `n`, so the generator's entire state is
//! a handful of counters — it checkpoints through
//! [`vantage_snapshot::Snapshot`] and replays bit-identically, and two
//! drivers that consume the same event sequence stay in lockstep no
//! matter how they overlap cache work with generation.

use vantage_cache::hash::mix64;
use vantage_cache::LineAddr;
use vantage_snapshot::{Decoder, Encoder, Snapshot};

/// Configuration for a [`TenantChurn`] generator.
#[derive(Clone, Copy, Debug)]
pub struct TenantChurnConfig {
    /// Maximum concurrently live tenants (admission cap).
    pub max_tenants: usize,
    /// Mean tenant lifetime, in generator events (exponential).
    pub mean_lifetime: f64,
    /// Mean events between arrivals (Poisson process).
    pub mean_interarrival: f64,
    /// Zipf skew for popularity by seniority rank (0 = uniform).
    pub zipf_s: f64,
    /// Lines in each tenant's private footprint.
    pub footprint_lines: u64,
    /// Diurnal period in events (0 disables the modulation).
    pub diurnal_period: u64,
    /// Diurnal swing in `[0, 1)`: traffic varies by `±amplitude`.
    pub diurnal_amplitude: f64,
    /// Seed for the counter-based RNG.
    pub seed: u64,
}

impl Default for TenantChurnConfig {
    /// A mid-size service: up to 64 tenants, lifetimes of ~2M events,
    /// an arrival every ~20K events, Zipf(0.9) popularity and a mild
    /// diurnal swing.
    fn default() -> Self {
        Self {
            max_tenants: 64,
            mean_lifetime: 2_000_000.0,
            mean_interarrival: 20_000.0,
            zipf_s: 0.9,
            footprint_lines: 4_096,
            diurnal_period: 1_000_000,
            diurnal_amplitude: 0.5,
            seed: 1,
        }
    }
}

/// An invalid [`TenantChurnConfig`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChurnConfigError {
    /// `max_tenants` was zero.
    NoTenants,
    /// `mean_lifetime` or `mean_interarrival` was not positive and finite.
    BadRate,
    /// `zipf_s` was negative, NaN, or infinite.
    BadSkew,
    /// `footprint_lines` was zero or does not fit beside the tenant id.
    BadFootprint,
    /// `diurnal_amplitude` was outside `[0, 1)`.
    BadAmplitude,
}

impl std::fmt::Display for ChurnConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NoTenants => f.write_str("max_tenants must be at least 1"),
            Self::BadRate => f.write_str("lifetimes and inter-arrival gaps must be positive"),
            Self::BadSkew => f.write_str("zipf_s must be finite and non-negative"),
            Self::BadFootprint => f.write_str("footprint_lines must be in 1..2^32"),
            Self::BadAmplitude => f.write_str("diurnal_amplitude must be in [0, 1)"),
        }
    }
}

impl std::error::Error for ChurnConfigError {}

/// One generator event, consumed in order by the service driver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChurnEvent {
    /// A tenant arrived; the driver should create its partition.
    Arrive {
        /// The stable external tenant id (never reused).
        tenant: u64,
    },
    /// A tenant departed; the driver should destroy its partition.
    Depart {
        /// The departing tenant's id.
        tenant: u64,
    },
    /// One cache access by a live tenant.
    Access {
        /// The accessing tenant's id.
        tenant: u64,
        /// The line touched (unique to this tenant).
        addr: LineAddr,
    },
}

#[derive(Clone, Copy, Debug)]
struct Tenant {
    id: u64,
    depart_at: u64,
}

/// The churn generator; see the [module docs](self).
#[derive(Clone, Debug)]
pub struct TenantChurn {
    cfg: TenantChurnConfig,
    /// Event clock (advances once per `Access`).
    now: u64,
    /// Monotone draw counter — the whole RNG state.
    draws: u64,
    /// Next tenant id to assign (ids are never reused).
    next_id: u64,
    next_arrival_at: u64,
    live: Vec<Tenant>,
    /// Cached min of `live[..].depart_at` (u64::MAX when empty).
    next_depart_at: u64,
    /// Cumulative popularity weights over `live`, rebuilt on churn and
    /// when the diurnal slot rolls over.
    cum_weights: Vec<f64>,
    weights_slot: u64,
}

impl TenantChurn {
    /// Creates the generator. The first event is always an `Arrive`.
    ///
    /// # Errors
    ///
    /// A [`ChurnConfigError`] naming the offending field.
    pub fn try_new(cfg: TenantChurnConfig) -> Result<Self, ChurnConfigError> {
        if cfg.max_tenants == 0 {
            return Err(ChurnConfigError::NoTenants);
        }
        for rate in [cfg.mean_lifetime, cfg.mean_interarrival] {
            if !rate.is_finite() || rate <= 0.0 {
                return Err(ChurnConfigError::BadRate);
            }
        }
        if !cfg.zipf_s.is_finite() || cfg.zipf_s < 0.0 {
            return Err(ChurnConfigError::BadSkew);
        }
        if cfg.footprint_lines == 0 || cfg.footprint_lines >= (1 << 32) {
            return Err(ChurnConfigError::BadFootprint);
        }
        if !(0.0..1.0).contains(&cfg.diurnal_amplitude) {
            return Err(ChurnConfigError::BadAmplitude);
        }
        Ok(Self {
            cfg,
            now: 0,
            draws: 0,
            next_id: 0,
            next_arrival_at: 0,
            live: Vec::new(),
            next_depart_at: u64::MAX,
            cum_weights: Vec::new(),
            weights_slot: 0,
        })
    }

    /// The configuration the generator was built with.
    pub fn config(&self) -> &TenantChurnConfig {
        &self.cfg
    }

    /// Number of currently live tenants.
    pub fn live_tenants(&self) -> usize {
        self.live.len()
    }

    /// The event clock (one tick per `Access` event).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Total tenants ever admitted.
    pub fn tenants_admitted(&self) -> u64 {
        self.next_id
    }

    /// A uniform draw in `[0, 1)` from the counter-based stream.
    fn u01(&mut self) -> f64 {
        self.draws += 1;
        (mix64(self.cfg.seed ^ self.draws) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// An exponential draw with the given mean, in whole events (≥ 1).
    fn exp(&mut self, mean: f64) -> u64 {
        let u = self.u01();
        let x = -mean * (1.0 - u).ln();
        x.clamp(1.0, u64::MAX as f64 / 2.0) as u64
    }

    /// The diurnal time slot (weights are refreshed per slot, keeping
    /// the per-access cost at a binary search).
    fn slot(&self) -> u64 {
        if self.cfg.diurnal_period == 0 {
            0
        } else {
            self.now / (self.cfg.diurnal_period / 32).max(1)
        }
    }

    fn rebuild_weights(&mut self) {
        self.weights_slot = self.slot();
        // Evaluate the sinusoid at the slot's *start*, not at `now`:
        // rebuilds triggered mid-slot (churn, checkpoint restore) must
        // produce the exact weights the slot rollover would have.
        let slot_start = if self.cfg.diurnal_period == 0 {
            0
        } else {
            self.weights_slot * (self.cfg.diurnal_period / 32).max(1)
        };
        self.cum_weights.clear();
        let mut acc = 0.0f64;
        for (rank, t) in self.live.iter().enumerate() {
            let zipf = 1.0 / ((rank + 1) as f64).powf(self.cfg.zipf_s);
            let diurnal = if self.cfg.diurnal_period == 0 {
                1.0
            } else {
                // A per-tenant phase rotates which tenants are peaking.
                let phase = mix64(t.id ^ 0xD1A2) as f64 / u64::MAX as f64;
                let angle = std::f64::consts::TAU
                    * (slot_start as f64 / self.cfg.diurnal_period as f64 + phase);
                1.0 + self.cfg.diurnal_amplitude * angle.sin()
            };
            acc += zipf * diurnal;
            self.cum_weights.push(acc);
        }
    }

    fn refresh_next_depart(&mut self) {
        self.next_depart_at = self
            .live
            .iter()
            .map(|t| t.depart_at)
            .min()
            .unwrap_or(u64::MAX);
    }

    /// Produces the next event. Never blocks: with no live tenant the
    /// clock jumps straight to the next arrival.
    pub fn next_event(&mut self) -> ChurnEvent {
        loop {
            // Departures first: drain every tenant whose time has come
            // before generating more of its traffic.
            if self.next_depart_at <= self.now {
                let due = self.next_depart_at;
                let i = self
                    .live
                    .iter()
                    .position(|t| t.depart_at == due)
                    .expect("cached min departure is present");
                let tenant = self.live.remove(i).id;
                self.refresh_next_depart();
                self.rebuild_weights();
                return ChurnEvent::Depart { tenant };
            }
            if self.next_arrival_at <= self.now {
                let gap = self.exp(self.cfg.mean_interarrival);
                self.next_arrival_at = self.now + gap;
                if self.live.len() >= self.cfg.max_tenants {
                    // Admission rejected; the arrival is dropped.
                    continue;
                }
                let id = self.next_id;
                self.next_id += 1;
                let life = self.exp(self.cfg.mean_lifetime);
                self.live.push(Tenant {
                    id,
                    depart_at: self.now + life,
                });
                self.next_depart_at = self.next_depart_at.min(self.now + life);
                self.rebuild_weights();
                return ChurnEvent::Arrive { tenant: id };
            }
            if self.live.is_empty() {
                self.now = self.next_arrival_at.min(self.next_depart_at);
                continue;
            }
            self.now += 1;
            if self.slot() != self.weights_slot {
                self.rebuild_weights();
            }
            let total = *self.cum_weights.last().expect("live population");
            let pick = self.u01() * total;
            let i = self
                .cum_weights
                .partition_point(|&c| c <= pick)
                .min(self.live.len() - 1);
            let tenant = self.live[i].id;
            // Hot-headed reuse inside the tenant's private footprint.
            let u = self.u01();
            let line = (self.cfg.footprint_lines as f64 * u * u * u) as u64;
            let addr = LineAddr((tenant << 32) | line.min(self.cfg.footprint_lines - 1));
            return ChurnEvent::Access { tenant, addr };
        }
    }
}

impl Snapshot for TenantChurn {
    fn save_state(&self, enc: &mut Encoder) {
        enc.put_u64(self.now);
        enc.put_u64(self.draws);
        enc.put_u64(self.next_id);
        enc.put_u64(self.next_arrival_at);
        enc.put_u64(self.live.len() as u64);
        for t in &self.live {
            enc.put_u64(t.id);
            enc.put_u64(t.depart_at);
        }
    }

    fn load_state(&mut self, dec: &mut Decoder<'_>) -> vantage_snapshot::Result<()> {
        let now = dec.take_u64()?;
        let draws = dec.take_u64()?;
        let next_id = dec.take_u64()?;
        let next_arrival_at = dec.take_u64()?;
        let n = dec.take_u64()? as usize;
        if n > self.cfg.max_tenants {
            return Err(dec.mismatch("live tenants exceed the admission cap"));
        }
        let mut live = Vec::with_capacity(n);
        for _ in 0..n {
            let id = dec.take_u64()?;
            let depart_at = dec.take_u64()?;
            if id >= next_id {
                return Err(dec.invalid("live tenant id beyond the id watermark"));
            }
            live.push(Tenant { id, depart_at });
        }
        self.now = now;
        self.draws = draws;
        self.next_id = next_id;
        self.next_arrival_at = next_arrival_at;
        self.live = live;
        self.refresh_next_depart();
        self.rebuild_weights();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> TenantChurnConfig {
        TenantChurnConfig {
            max_tenants: 8,
            mean_lifetime: 5_000.0,
            mean_interarrival: 500.0,
            footprint_lines: 256,
            diurnal_period: 2_000,
            ..TenantChurnConfig::default()
        }
    }

    #[test]
    fn rejects_malformed_configs() {
        let base = quick_cfg();
        let cases = [
            (
                TenantChurnConfig {
                    max_tenants: 0,
                    ..base
                },
                ChurnConfigError::NoTenants,
            ),
            (
                TenantChurnConfig {
                    mean_lifetime: 0.0,
                    ..base
                },
                ChurnConfigError::BadRate,
            ),
            (
                TenantChurnConfig {
                    zipf_s: f64::NAN,
                    ..base
                },
                ChurnConfigError::BadSkew,
            ),
            (
                TenantChurnConfig {
                    footprint_lines: 0,
                    ..base
                },
                ChurnConfigError::BadFootprint,
            ),
            (
                TenantChurnConfig {
                    diurnal_amplitude: 1.0,
                    ..base
                },
                ChurnConfigError::BadAmplitude,
            ),
        ];
        for (cfg, want) in cases {
            assert_eq!(TenantChurn::try_new(cfg).err(), Some(want));
        }
    }

    #[test]
    fn generates_a_live_population_with_churn() {
        let mut gen = TenantChurn::try_new(quick_cfg()).expect("valid churn config");
        let (mut arrives, mut departs, mut accesses) = (0u64, 0u64, 0u64);
        let mut live = std::collections::HashSet::new();
        for _ in 0..200_000 {
            match gen.next_event() {
                ChurnEvent::Arrive { tenant } => {
                    assert!(live.insert(tenant), "tenant ids are never reused");
                    arrives += 1;
                }
                ChurnEvent::Depart { tenant } => {
                    assert!(live.remove(&tenant), "departures name live tenants");
                    departs += 1;
                }
                ChurnEvent::Access { tenant, addr } => {
                    assert!(live.contains(&tenant), "only live tenants access");
                    assert_eq!(addr.0 >> 32, tenant, "footprints are private");
                    accesses += 1;
                }
            }
            assert!(live.len() <= 8, "admission cap holds");
            assert_eq!(live.len(), gen.live_tenants());
        }
        assert!(arrives > 20, "population churns: {arrives} arrivals");
        assert!(departs > 10, "population churns: {departs} departures");
        assert!(accesses > 100_000, "traffic dominates: {accesses}");
    }

    #[test]
    fn popularity_is_skewed_toward_senior_tenants() {
        let cfg = TenantChurnConfig {
            mean_lifetime: 1e12, // effectively immortal
            zipf_s: 1.2,
            diurnal_period: 0,
            ..quick_cfg()
        };
        let mut gen = TenantChurn::try_new(cfg).expect("valid churn config");
        let mut counts = std::collections::HashMap::new();
        for _ in 0..100_000 {
            if let ChurnEvent::Access { tenant, .. } = gen.next_event() {
                *counts.entry(tenant).or_insert(0u64) += 1;
            }
        }
        let first = counts.get(&0).copied().unwrap_or(0);
        let last = counts.get(&7).copied().unwrap_or(0);
        assert!(
            first > 3 * last.max(1),
            "tenant 0 should dominate: {first} vs {last}"
        );
    }

    #[test]
    fn checkpoint_resumes_bit_identically() {
        let mut a = TenantChurn::try_new(quick_cfg()).expect("valid churn config");
        for _ in 0..50_000 {
            a.next_event();
        }
        let mut enc = Encoder::new();
        a.save_state(&mut enc);
        let bytes = enc.into_bytes();

        let mut b = TenantChurn::try_new(quick_cfg()).expect("valid churn config");
        let mut dec = Decoder::new(&bytes, "tenant churn");
        b.load_state(&mut dec).expect("checkpoint restores");
        for _ in 0..50_000 {
            assert_eq!(a.next_event(), b.next_event());
        }
    }

    #[test]
    fn hostile_checkpoints_are_rejected() {
        let mut gen = TenantChurn::try_new(quick_cfg()).expect("valid churn config");
        for _ in 0..10_000 {
            gen.next_event();
        }
        let mut enc = Encoder::new();
        gen.save_state(&mut enc);
        let good = enc.into_bytes();

        // Live count beyond the admission cap.
        let mut evil = good.clone();
        evil[32..40].copy_from_slice(&u64::MAX.to_le_bytes());
        let mut dec = Decoder::new(&evil, "tenant churn");
        assert!(gen.clone().load_state(&mut dec).is_err());

        // A live tenant id above the id watermark.
        let mut evil = good;
        evil[16..24].copy_from_slice(&0u64.to_le_bytes());
        let mut dec = Decoder::new(&evil, "tenant churn");
        assert!(gen.clone().load_state(&mut dec).is_err());
    }
}
