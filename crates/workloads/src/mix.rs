//! Multiprogrammed mix construction (§5, "Workloads").
//!
//! With four behavioural categories there are 35 multisets (combinations
//! with repetition) of four category slots; each multiset is a *class*. The
//! paper builds 10 mixes per class: for the 4-core machine each slot is one
//! randomly chosen application from its category, and for the 32-core
//! machine each slot contributes 8 randomly chosen applications. Class
//! names concatenate the slot codes in `s < f < t < n` order, matching the
//! paper's mix names (`sftn1`, `ffnn3`, `sssf6`, ...).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::app::{AppSpec, Category};
use crate::catalog::catalog;

/// Category ordering used in class names (the paper's `sftn` order).
const NAME_ORDER: [Category; 4] = [
    Category::Streaming,
    Category::Friendly,
    Category::Fitting,
    Category::Insensitive,
];

/// A multiprogrammed workload: one application per core.
#[derive(Clone, Debug)]
pub struct Mix {
    /// `<class><index>` (e.g. `ffnn3`), as in the paper's figures.
    pub name: String,
    /// The four category slots of this mix's class.
    pub class: [Category; 4],
    /// One spec per core (`cores = 4 × slot multiplicity`).
    pub apps: Vec<AppSpec>,
}

/// All 35 class slot-combinations in name order.
pub fn class_names() -> Vec<[Category; 4]> {
    let mut classes = Vec::with_capacity(35);
    // Index-based combination enumeration: `a <= b <= c <= d` over the four
    // category slots, which iterator adapters only obscure.
    #[allow(clippy::needless_range_loop)]
    for a in 0..4 {
        for b in a..4 {
            for c in b..4 {
                for d in c..4 {
                    classes.push([NAME_ORDER[a], NAME_ORDER[b], NAME_ORDER[c], NAME_ORDER[d]]);
                }
            }
        }
    }
    classes
}

/// Builds `per_class` mixes per class for a `cores`-core machine
/// (`cores` must be a positive multiple of 4: each class slot contributes
/// `cores / 4` applications). Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `cores` is not a positive multiple of 4.
///
/// # Example
///
/// ```
/// use vantage_workloads::mixes;
///
/// // The paper's 4-core workload set: 35 classes × 10 mixes.
/// let all = mixes(4, 10, 42);
/// assert_eq!(all.len(), 350);
/// assert_eq!(all[0].apps.len(), 4);
///
/// // And the 32-core set: 8 apps per class slot.
/// let big = mixes(32, 10, 42);
/// assert_eq!(big.len(), 350);
/// assert_eq!(big[0].apps.len(), 32);
/// ```
pub fn mixes(cores: usize, per_class: usize, seed: u64) -> Vec<Mix> {
    assert!(
        cores > 0 && cores.is_multiple_of(4),
        "cores must be a positive multiple of 4"
    );
    let per_slot = cores / 4;
    let apps = catalog();
    let pool =
        |cat: Category| -> Vec<&AppSpec> { apps.iter().filter(|a| a.category == cat).collect() };
    let pools: Vec<(Category, Vec<&AppSpec>)> = NAME_ORDER.iter().map(|&c| (c, pool(c))).collect();

    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(35 * per_class);
    for class in class_names() {
        let class_str: String = class.iter().map(|c| c.code()).collect();
        for k in 0..per_class {
            let mut mix_apps = Vec::with_capacity(cores);
            for &slot in &class {
                let pool = &pools
                    .iter()
                    .find(|(c, _)| *c == slot)
                    .expect("pool exists")
                    .1;
                for _ in 0..per_slot {
                    mix_apps.push(pool[rng.gen_range(0..pool.len())].clone());
                }
            }
            out.push(Mix {
                name: format!("{class_str}{k}"),
                class,
                apps: mix_apps,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirty_five_classes() {
        let classes = class_names();
        assert_eq!(classes.len(), 35);
        // All distinct.
        let mut names: Vec<String> = classes
            .iter()
            .map(|c| c.iter().map(|x| x.code()).collect())
            .collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 35);
        // Paper-style names exist.
        assert!(names.contains(&"sftn".to_string()));
        assert!(names.contains(&"ffnn".to_string()));
        assert!(names.contains(&"sssf".to_string()));
    }

    #[test]
    fn mixes_are_deterministic() {
        let a = mixes(4, 2, 9);
        let b = mixes(4, 2, 9);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            let xa: Vec<&str> = x.apps.iter().map(|s| s.name).collect();
            let ya: Vec<&str> = y.apps.iter().map(|s| s.name).collect();
            assert_eq!(xa, ya);
        }
    }

    #[test]
    fn apps_match_their_slots() {
        for mix in mixes(8, 1, 3) {
            assert_eq!(mix.apps.len(), 8);
            for (i, app) in mix.apps.iter().enumerate() {
                let slot = mix.class[i / 2];
                assert_eq!(app.category, slot, "mix {} app {i}", mix.name);
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = mixes(4, 1, 1);
        let b = mixes(4, 1, 2);
        let same = a
            .iter()
            .zip(&b)
            .all(|(x, y)| x.apps.iter().zip(&y.apps).all(|(p, q)| p.name == q.name));
        assert!(!same);
    }

    #[test]
    #[should_panic(expected = "multiple of 4")]
    fn bad_core_count_rejected() {
        mixes(6, 1, 0);
    }
}
