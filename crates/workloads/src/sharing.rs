//! Shared-data access patterns and the prime+probe measurement harness.
//!
//! Everything else in this crate gives each application a private address
//! space (bases at `(app + 1) << 40`), so partitions never touch each
//! other's lines. This module is the deliberate exception: it generates
//! streams in which several partitions name the *same* lines — the input
//! the ownership layer's [`ShareMode`](vantage_cache::ShareMode) knob
//! exists to resolve — plus the prime+probe geometry the side-channel
//! experiments and the `side_channel` example measure with.
//!
//! Two producers live here:
//!
//! * [`SharedHotSet`] — a per-partition stream mixing a private skewed
//!   region with a common hot set, for policy-facing sharing pressure
//!   (the `shared_hits` / `ownership_transfers` lanes of
//!   `PolicyInput`).
//! * [`PrimeProbe`] — the adversarial geometry: an attacker primes a probe
//!   set it shares with a victim, the victim acts (or not) depending on a
//!   secret bit, and the attacker counts probe misses. The channel
//!   capacity estimate over many trials ([`binary_channel_bits`]) is the
//!   leak-rate metric recorded in `BENCH_security.json`.
//!
//! All streams are counter-based (`mix64(seed ^ counter)`), so any prefix
//! is reproducible without carrying RNG state, and identical across
//! execution engines.

use vantage_cache::hash::mix64;
use vantage_cache::{LineAddr, PartitionId};
use vantage_partitioning::AccessRequest;

/// Base of the shared region. Below the Replicate salt bit (48) like every
/// app base, and far above the `(app + 1) << 40` private bases of any
/// realistic partition count, so shared lines never collide with private
/// ones.
pub const SHARED_REGION_BASE: u64 = 0x7E << 40;

/// Probe-set size (in lines) of the default prime+probe geometry: small
/// enough to fit comfortably in one partition of every measured machine,
/// large enough that per-trial miss counts are well out of the noise.
pub const PROBE_LINES: usize = 256;

/// Rounds the attacker sweeps its probe set per prime/probe phase. One
/// round suffices on a set-associative array; skewed/zcache arrays can
/// self-evict within a sweep, so a few rounds settle the set.
pub const PRIME_ROUNDS: usize = 3;

/// A line in the shared region.
#[inline]
pub fn shared_line(i: u64) -> LineAddr {
    LineAddr(SHARED_REGION_BASE + i)
}

/// A line in `part`'s private traffic region (disjoint from the
/// [`mix`](crate::mix) generators' regions, which use low region indices).
#[inline]
pub fn private_line(part: u16, i: u64) -> LineAddr {
    LineAddr(((part as u64 + 1) << 40) + (0xF7 << 32) + i)
}

/// Per-partition stream mixing a private skewed region with a common
/// shared hot set.
///
/// Counter-based: request `n` of partition `p` is a pure function of
/// `(seed, p, n)`, so streams can be regenerated from any point and are
/// identical no matter how accesses are batched.
#[derive(Clone, Debug)]
pub struct SharedHotSet {
    /// Lines in the common hot set.
    pub shared_lines: u64,
    /// Lines in each partition's private region.
    pub private_lines: u64,
    /// Probability (in 1/256ths) that an access touches the shared set.
    pub shared_weight: u8,
    /// Stream seed.
    pub seed: u64,
}

impl SharedHotSet {
    /// A default geometry: 1/4 of accesses to a 512-line shared set,
    /// private footprints of 4K lines.
    pub fn new(seed: u64) -> Self {
        Self {
            shared_lines: 512,
            private_lines: 4096,
            shared_weight: 64,
            seed,
        }
    }

    /// The address of request `n` issued by partition `part`.
    #[inline]
    pub fn addr(&self, part: u16, n: u64) -> LineAddr {
        let r = mix64(self.seed ^ mix64((part as u64) << 32 | 0x5A5A) ^ n);
        if (r & 0xFF) < self.shared_weight as u64 {
            // Skew the shared set too: low indices are hotter, so shared
            // hits (and hence ownership traffic) concentrate on a head.
            let u = ((r >> 8) & 0xFFFF) as f64 / 65536.0;
            shared_line((self.shared_lines as f64 * u * u) as u64 % self.shared_lines)
        } else {
            private_line(part, (r >> 8) % self.private_lines)
        }
    }

    /// Appends `count` requests by `part`, starting at stream position
    /// `start`, to `out`.
    pub fn fill(&self, part: PartitionId, start: u64, count: usize, out: &mut Vec<AccessRequest>) {
        let p = part.raw();
        out.reserve(count);
        for n in 0..count as u64 {
            out.push(AccessRequest::read(part, self.addr(p, start + n)));
        }
    }
}

/// The prime+probe measurement geometry: one attacker, one victim, a probe
/// set in the shared region.
///
/// A trial is `prime → victim_act(secret) → probe`; the attacker's signal
/// is the number of probe misses ([`count_misses`] over the probe batch's
/// outcomes). Build the batches here and drive them through
/// `Llc::access_batch` — the outcomes are synchronous on every engine, so
/// the measurement is engine-independent.
#[derive(Clone, Debug)]
pub struct PrimeProbe {
    /// The measuring partition.
    pub attacker: PartitionId,
    /// The partition whose secret-dependent activity is measured.
    pub victim: PartitionId,
    /// Probe-set size in lines.
    pub probe_lines: usize,
    /// Victim accesses per active trial.
    pub victim_accesses: usize,
    /// Trial seed (varies the victim's private traffic across trials).
    pub seed: u64,
}

impl PrimeProbe {
    /// The default geometry over [`PROBE_LINES`].
    pub fn new(attacker: PartitionId, victim: PartitionId, seed: u64) -> Self {
        Self {
            attacker,
            victim,
            probe_lines: PROBE_LINES,
            victim_accesses: 8 * PROBE_LINES,
            seed,
        }
    }

    /// The attacker's prime batch: [`PRIME_ROUNDS`] sweeps of the probe
    /// set, bringing every probe line into the attacker's partition.
    pub fn prime(&self, out: &mut Vec<AccessRequest>) {
        out.reserve(PRIME_ROUNDS * self.probe_lines);
        for _ in 0..PRIME_ROUNDS {
            for i in 0..self.probe_lines as u64 {
                out.push(AccessRequest::read(self.attacker, shared_line(i)));
            }
        }
    }

    /// The victim's batch for one trial. With `secret` set the victim
    /// touches the shared probe set and then drives a heavy private
    /// stream — under [`ShareMode::Adopt`](vantage_cache::ShareMode::Adopt)
    /// the touched lines migrate into the victim's partition, where that
    /// stream's replacement pressure evicts them. With `secret` clear the
    /// victim stays idle. The secret therefore modulates both the classic
    /// occupancy channel (blocked by partitioning alone) and the
    /// ownership channel (blocked only by `Pin`/`Replicate`).
    pub fn victim_act(&self, secret: bool, trial: u64, out: &mut Vec<AccessRequest>) {
        if !secret {
            return;
        }
        out.reserve(self.probe_lines + self.victim_accesses);
        for i in 0..self.probe_lines as u64 {
            out.push(AccessRequest::read(self.victim, shared_line(i)));
        }
        let base = mix64(self.seed ^ mix64(trial));
        for n in 0..self.victim_accesses as u64 {
            // A streaming sweep: maximal replacement pressure inside the
            // victim's partition, address-disjoint from everything else.
            let i = base.wrapping_add(n) % (1 << 30);
            out.push(AccessRequest::read(
                self.victim,
                private_line(self.victim.raw(), i),
            ));
        }
    }

    /// The attacker's probe batch: one sweep of the probe set. Count the
    /// misses in its outcomes with [`count_misses`].
    pub fn probe(&self, out: &mut Vec<AccessRequest>) {
        out.reserve(self.probe_lines);
        for i in 0..self.probe_lines as u64 {
            out.push(AccessRequest::read(self.attacker, shared_line(i)));
        }
    }
}

/// Counts the misses in a batch's outcomes — the attacker's per-trial
/// observable.
pub fn count_misses(outcomes: &[vantage_partitioning::AccessOutcome]) -> u64 {
    outcomes
        .iter()
        .filter(|o| matches!(o, vantage_partitioning::AccessOutcome::Miss))
        .count() as u64
}

/// Mutual information (in bits) of the 2×2 contingency table
/// `n[secret][observed]`, the channel-capacity estimate of a binary
/// prime+probe channel: `n00` trials with secret 0 observed 0, `n01`
/// secret 0 observed 1, and so on. Zero trials yield zero bits.
pub fn binary_channel_bits(n00: u64, n01: u64, n10: u64, n11: u64) -> f64 {
    let total = (n00 + n01 + n10 + n11) as f64;
    if total == 0.0 {
        return 0.0;
    }
    let cells = [n00, n01, n10, n11].map(|c| c as f64 / total);
    let px = [cells[0] + cells[1], cells[2] + cells[3]];
    let py = [cells[0] + cells[2], cells[1] + cells[3]];
    let mut bits = 0.0;
    for (i, &p) in cells.iter().enumerate() {
        if p > 0.0 {
            bits += p * (p / (px[i / 2] * py[i % 2])).log2();
        }
    }
    // Tiny negatives from floating-point cancellation are still zero bits.
    bits.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_hot_set_is_counter_based() {
        let g = SharedHotSet::new(42);
        let mut a = Vec::new();
        let mut b = Vec::new();
        g.fill(PartitionId::from_index(1), 0, 100, &mut a);
        g.fill(PartitionId::from_index(1), 50, 50, &mut b);
        assert_eq!(&a[50..], &b[..], "any prefix regenerates");
    }

    #[test]
    fn shared_and_private_regions_are_disjoint() {
        let g = SharedHotSet::new(7);
        let mut shared = 0u64;
        for n in 0..10_000 {
            for p in 0..4u16 {
                let addr = g.addr(p, n).0;
                if addr >= SHARED_REGION_BASE {
                    assert!(addr < SHARED_REGION_BASE + g.shared_lines);
                    shared += 1;
                } else {
                    assert_eq!(addr >> 40, p as u64 + 1, "private lines stay private");
                }
            }
        }
        // shared_weight = 64/256: a quarter of the stream, within noise.
        let frac = shared as f64 / 40_000.0;
        assert!(
            (0.2..0.3).contains(&frac),
            "shared fraction ≈ 1/4, got {frac}"
        );
    }

    #[test]
    fn prime_and_probe_name_the_same_lines() {
        let pp = PrimeProbe::new(PartitionId::from_index(0), PartitionId::from_index(1), 1);
        let (mut prime, mut probe) = (Vec::new(), Vec::new());
        pp.prime(&mut prime);
        pp.probe(&mut probe);
        assert_eq!(prime.len(), PRIME_ROUNDS * PROBE_LINES);
        assert_eq!(probe.len(), PROBE_LINES);
        for (a, b) in prime.iter().zip(&probe[..]) {
            assert_eq!(a.addr, b.addr, "probe replays the prime sweep");
        }
    }

    #[test]
    fn idle_victim_issues_nothing() {
        let pp = PrimeProbe::new(PartitionId::from_index(0), PartitionId::from_index(1), 1);
        let mut out = Vec::new();
        pp.victim_act(false, 3, &mut out);
        assert!(out.is_empty());
        pp.victim_act(true, 3, &mut out);
        assert!(!out.is_empty());
        assert!(out.iter().all(|r| r.part == pp.victim));
    }

    #[test]
    fn channel_bits_bounds() {
        // Perfectly separable channel: 1 bit.
        assert!((binary_channel_bits(500, 0, 0, 500) - 1.0).abs() < 1e-12);
        // Independent: 0 bits.
        assert!(binary_channel_bits(250, 250, 250, 250).abs() < 1e-12);
        // Degenerate margins and empty tables are zero, not NaN.
        assert_eq!(binary_channel_bits(0, 0, 0, 0), 0.0);
        assert_eq!(binary_channel_bits(10, 0, 0, 0), 0.0);
        // Partial correlation lands strictly between.
        let b = binary_channel_bits(400, 100, 100, 400);
        assert!(b > 0.0 && b < 1.0, "partial channel: {b}");
    }
}
