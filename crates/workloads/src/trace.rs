//! Trace recording and replay.
//!
//! The synthetic models exist because SPEC traces are not distributable;
//! anyone who *does* have traces can plug them straight into the simulator
//! through this module. The format is deliberately trivial: a stream of
//! 12-byte little-endian records, `u32 gap` followed by `u64 line address`
//! (one [`MemRef`] each), with an 8-byte magic header.
//!
//! [`TraceWriter`]/[`TraceReader`] handle the encoding; [`TraceGen`] replays
//! a trace as a [`RefStream`] (looping at the end, so a finite trace can
//! drive an arbitrarily long simulation, like SimPoint-style samples do).

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use vantage_cache::LineAddr;

use crate::app::{AppGen, MemRef};

/// Anything that can feed a simulated core with memory references.
///
/// Every stream is a [`vantage_snapshot::Snapshot`] (enforced by the
/// supertrait so `Box<dyn RefStream>` checkpoints without downcasts):
/// generator state — RNG streams, cursors, replay positions — must
/// round-trip so a resumed simulation sees the identical reference
/// sequence it would have seen uninterrupted.
pub trait RefStream: vantage_snapshot::Snapshot {
    /// Produces the next reference.
    fn next_ref(&mut self) -> MemRef;
}

impl RefStream for AppGen {
    fn next_ref(&mut self) -> MemRef {
        AppGen::next_ref(self)
    }
}

const MAGIC: &[u8; 8] = b"VNTGTRC1";

/// Streaming writer for the trace format.
///
/// # Example
///
/// ```no_run
/// use vantage_workloads::trace::TraceWriter;
/// use vantage_workloads::MemRef;
///
/// # fn main() -> std::io::Result<()> {
/// let mut w = TraceWriter::create("app.trace")?;
/// w.write(MemRef { gap: 3, addr: 0x1000.into() })?;
/// w.finish()?;
/// # Ok(())
/// # }
/// ```
pub struct TraceWriter<W: Write = BufWriter<File>> {
    sink: W,
    records: u64,
}

impl TraceWriter<BufWriter<File>> {
    /// Creates a trace file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Self::new(BufWriter::new(File::create(path)?))
    }
}

impl<W: Write> TraceWriter<W> {
    /// Wraps any sink (note a `&mut Vec<u8>` or `BufWriter` works).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing the header.
    pub fn new(mut sink: W) -> io::Result<Self> {
        sink.write_all(MAGIC)?;
        Ok(Self { sink, records: 0 })
    }

    /// Appends one reference.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write(&mut self, r: MemRef) -> io::Result<()> {
        self.sink.write_all(&r.gap.to_le_bytes())?;
        self.sink.write_all(&r.addr.0.to_le_bytes())?;
        self.records += 1;
        Ok(())
    }

    /// Records written so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Flushes and returns the record count.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn finish(mut self) -> io::Result<u64> {
        self.sink.flush()?;
        Ok(self.records)
    }
}

/// Streaming reader for the trace format.
pub struct TraceReader<R: Read = BufReader<File>> {
    source: R,
}

impl TraceReader<BufReader<File>> {
    /// Opens a trace file.
    ///
    /// # Errors
    ///
    /// Fails on filesystem errors or a bad magic header.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        Self::new(BufReader::new(File::open(path)?))
    }
}

impl<R: Read> TraceReader<R> {
    /// Wraps any source, validating the header.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or a bad magic header.
    pub fn new(mut source: R) -> io::Result<Self> {
        let mut magic = [0u8; 8];
        source.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a vantage trace",
            ));
        }
        Ok(Self { source })
    }

    /// Reads the next record, or `None` at end of stream.
    ///
    /// End of stream is only clean on a record boundary: a stream ending
    /// with 1–11 leftover bytes is a truncated record, reported as
    /// [`io::ErrorKind::UnexpectedEof`] rather than silently dropped (a
    /// truncated trace would otherwise replay as a shorter, valid-looking
    /// one).
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or a truncated record.
    pub fn read(&mut self) -> io::Result<Option<MemRef>> {
        let mut gap = [0u8; 4];
        let mut filled = 0;
        while filled < gap.len() {
            match self.source.read(&mut gap[filled..]) {
                Ok(0) => break,
                Ok(n) => filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        if filled == 0 {
            return Ok(None); // clean end of stream
        }
        if filled < gap.len() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("truncated trace record: {filled} of 12 bytes present"),
            ));
        }
        let mut addr = [0u8; 8];
        self.source.read_exact(&mut addr).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "truncated trace record: address bytes missing",
                )
            } else {
                e
            }
        })?;
        Ok(Some(MemRef {
            gap: u32::from_le_bytes(gap).max(1),
            addr: LineAddr(u64::from_le_bytes(addr)),
        }))
    }

    /// Drains the remaining records into a vector.
    ///
    /// # Errors
    ///
    /// Propagates read errors.
    pub fn read_all(mut self) -> io::Result<Vec<MemRef>> {
        let mut out = Vec::new();
        while let Some(r) = self.read()? {
            out.push(r);
        }
        Ok(out)
    }
}

/// Replays an in-memory trace as a [`RefStream`], looping at the end.
#[derive(Clone, Debug)]
pub struct TraceGen {
    refs: Vec<MemRef>,
    pos: usize,
    /// Completed passes over the trace.
    pub loops: u64,
}

impl TraceGen {
    /// Builds a replayer over `refs`.
    ///
    /// # Panics
    ///
    /// Panics if `refs` is empty (nothing to replay).
    pub fn new(refs: Vec<MemRef>) -> Self {
        assert!(!refs.is_empty(), "cannot replay an empty trace");
        Self {
            refs,
            pos: 0,
            loops: 0,
        }
    }

    /// Loads a trace file into a replayer.
    ///
    /// # Errors
    ///
    /// Propagates I/O and format errors; an empty trace is `InvalidData`.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let refs = TraceReader::open(path)?.read_all()?;
        if refs.is_empty() {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "empty trace"));
        }
        Ok(Self::new(refs))
    }

    /// Records `n` references from any generator into a new replayer
    /// (useful for checkpoint-style determinism without files).
    pub fn record(gen: &mut impl RefStream, n: usize) -> Self {
        assert!(n > 0, "cannot record an empty trace");
        Self::new((0..n).map(|_| gen.next_ref()).collect())
    }

    /// Number of records in one pass.
    pub fn len(&self) -> usize {
        self.refs.len()
    }

    /// Whether the trace is empty (never true: construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.refs.is_empty()
    }
}

impl RefStream for TraceGen {
    fn next_ref(&mut self) -> MemRef {
        let r = self.refs[self.pos];
        self.pos += 1;
        if self.pos == self.refs.len() {
            self.pos = 0;
            self.loops += 1;
        }
        r
    }
}

impl vantage_snapshot::Snapshot for TraceGen {
    /// The trace contents are configuration (reloaded from the same file);
    /// only the replay position and loop counter are run state.
    fn save_state(&self, enc: &mut vantage_snapshot::Encoder) {
        enc.put_u64(self.pos as u64);
        enc.put_u64(self.loops);
    }

    fn load_state(
        &mut self,
        dec: &mut vantage_snapshot::Decoder<'_>,
    ) -> vantage_snapshot::Result<()> {
        let pos = dec.take_usize()?;
        if pos >= self.refs.len() {
            return Err(dec.invalid("replay position beyond the trace"));
        }
        self.loops = dec.take_u64()?;
        self.pos = pos;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{AppSpec, Category, RegionKind};

    fn gen() -> AppGen {
        AppGen::new(
            AppSpec {
                name: "t",
                category: Category::Friendly,
                apki: 30.0,
                regions: vec![(
                    1.0,
                    RegionKind::Skewed {
                        lines: 1000,
                        gamma: 3.0,
                    },
                )],
                phases: None,
            },
            1 << 40,
            5,
        )
    }

    #[test]
    fn roundtrip_through_bytes() {
        let mut g = gen();
        let refs: Vec<MemRef> = (0..500).map(|_| g.next_ref()).collect();
        let mut buf = Vec::new();
        {
            let mut w = TraceWriter::new(&mut buf).expect("header");
            for &r in &refs {
                w.write(r).expect("write");
            }
            assert_eq!(w.finish().expect("flush"), 500);
        }
        let back = TraceReader::new(buf.as_slice())
            .expect("header")
            .read_all()
            .expect("read");
        assert_eq!(back, refs);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = TraceReader::new(&b"NOTATRACE123"[..])
            .map(|_| ())
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_record_is_an_error() {
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf).expect("header");
        w.write(MemRef {
            gap: 1,
            addr: LineAddr(7),
        })
        .expect("write");
        w.finish().expect("flush");
        buf.pop(); // chop the last byte
        let mut r = TraceReader::new(buf.as_slice()).expect("header");
        assert!(r.read().is_err());
    }

    #[test]
    fn truncation_inside_the_gap_field_is_an_error_not_eof() {
        // Regression: a stream cut 1-3 bytes into a record used to look
        // like a clean end of stream (read_exact reports both cases as
        // UnexpectedEof), so corrupt traces replayed as shorter valid ones.
        for extra in 1..4usize {
            let mut buf = Vec::new();
            let mut w = TraceWriter::new(&mut buf).expect("header");
            w.write(MemRef {
                gap: 9,
                addr: LineAddr(42),
            })
            .expect("write");
            w.finish().expect("flush");
            buf.extend(std::iter::repeat_n(0xAB, extra));
            let mut r = TraceReader::new(buf.as_slice()).expect("header");
            assert!(r.read().expect("first record intact").is_some());
            let err = r.read().expect_err("partial record must error");
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "extra = {extra}");
            assert!(
                err.to_string().contains("truncated"),
                "extra = {extra}: {err}"
            );
        }
    }

    #[test]
    fn clean_eof_on_record_boundary_is_none() {
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf).expect("header");
        w.write(MemRef {
            gap: 2,
            addr: LineAddr(3),
        })
        .expect("write");
        w.finish().expect("flush");
        let mut r = TraceReader::new(buf.as_slice()).expect("header");
        assert!(r.read().expect("record").is_some());
        assert!(r.read().expect("clean eof").is_none());
        assert!(r.read().expect("still clean").is_none());
    }

    #[test]
    fn replay_loops_and_matches_source() {
        let mut g = gen();
        let mut replay = TraceGen::record(&mut g, 100);
        let mut again = gen();
        for _ in 0..100 {
            assert_eq!(replay.next_ref(), again.next_ref());
        }
        assert_eq!(replay.loops, 1);
        // Second pass repeats the first.
        let first = replay.next_ref();
        let mut third = gen();
        assert_eq!(first, third.next_ref());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("vantage_trace_test");
        std::fs::create_dir_all(&dir).expect("tempdir");
        let path = dir.join("t.trace");
        let mut g = gen();
        let mut w = TraceWriter::create(&path).expect("create");
        for _ in 0..64 {
            w.write(g.next_ref()).expect("write");
        }
        w.finish().expect("flush");
        let t = TraceGen::load(&path).expect("load");
        assert_eq!(t.len(), 64);
        std::fs::remove_file(path).ok();
    }
}
