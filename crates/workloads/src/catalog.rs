//! The application catalog: 29 synthetic models mirroring Table 3's
//! classification of SPEC CPU2006 (14 insensitive / 6 friendly / 5 fitting
//! / 4 streaming).
//!
//! Names evoke the SPEC programs they stand in for, but the models are
//! synthetic: each is a region mixture whose solo miss curve lands in the
//! intended category under the paper's rule (< 5 L2 MPKI ⇒ insensitive;
//! gradual decline ⇒ friendly; abrupt knee above 1 MB ⇒ fitting; flat ⇒
//! streaming). Sizes assume 64-byte lines, so 16384 lines = 1 MB.

use crate::app::{AppSpec, Category, RegionKind};

/// Lines per megabyte with 64-byte cache lines.
pub const LINES_PER_MB: u64 = 16 * 1024;

fn hot(name: &'static str, lines: u64, apki: f64) -> AppSpec {
    AppSpec {
        name,
        category: Category::Insensitive,
        apki,
        regions: vec![(1.0, RegionKind::Hot { lines })],
        phases: None,
    }
}

fn friendly(name: &'static str, lines: u64, gamma: f64, apki: f64) -> AppSpec {
    AppSpec {
        name,
        category: Category::Friendly,
        apki,
        regions: vec![(1.0, RegionKind::Skewed { lines, gamma })],
        phases: None,
    }
}

fn fitting(name: &'static str, loop_lines: u64, hot_lines: u64, apki: f64) -> AppSpec {
    AppSpec {
        name,
        category: Category::Fitting,
        apki,
        regions: vec![
            (0.85, RegionKind::Loop { lines: loop_lines }),
            (0.15, RegionKind::Hot { lines: hot_lines }),
        ],
        phases: None,
    }
}

fn streaming(name: &'static str, apki: f64) -> AppSpec {
    AppSpec {
        name,
        category: Category::Streaming,
        apki,
        regions: vec![
            (0.92, RegionKind::Stream { wrap: 1 << 26 }),
            (0.08, RegionKind::Hot { lines: 256 }),
        ],
        phases: None,
    }
}

/// Builds the 29-application catalog.
///
/// # Example
///
/// ```
/// use vantage_workloads::{catalog, Category};
///
/// let apps = catalog();
/// assert_eq!(apps.len(), 29);
/// let n = apps.iter().filter(|a| a.category == Category::Insensitive).count();
/// assert_eq!(n, 14); // Table 3's split
/// ```
pub fn catalog() -> Vec<AppSpec> {
    vec![
        // --- Insensitive (14): small hot sets, mostly L1/L2-resident. ---
        hot("perlbench_like", 900, 18.0),
        hot("bwaves_like", 1400, 25.0),
        hot("gamess_like", 400, 12.0),
        hot("gromacs_like", 700, 15.0),
        hot("namd_like", 1100, 20.0),
        hot("gobmk_like", 1600, 22.0),
        hot("dealII_like", 1900, 24.0),
        hot("povray_like", 300, 10.0),
        hot("calculix_like", 800, 14.0),
        hot("hmmer_like", 600, 30.0),
        hot("sjeng_like", 1200, 16.0),
        hot("h264ref_like", 1700, 28.0),
        hot("tonto_like", 500, 11.0),
        hot("wrf_like", 1500, 19.0),
        // --- Cache-friendly (6): skewed reuse over multi-MB footprints. ---
        friendly("bzip2_like", 6 * LINES_PER_MB, 5.0, 35.0),
        AppSpec {
            // gcc-like: friendly with phase behaviour, so UCP retargets it
            // over time (the dynamics Fig. 8 shows).
            name: "gcc_like",
            category: Category::Friendly,
            apki: 40.0,
            regions: vec![
                (
                    0.7,
                    RegionKind::Skewed {
                        lines: 4 * LINES_PER_MB,
                        gamma: 4.0,
                    },
                ),
                (0.3, RegionKind::Hot { lines: 2048 }),
            ],
            phases: Some((
                400_000,
                vec![vec![0.7, 0.3], vec![0.25, 0.75], vec![0.9, 0.1]],
            )),
        },
        friendly("zeusmp_like", 8 * LINES_PER_MB, 6.0, 30.0),
        friendly("cactusADM_like", 5 * LINES_PER_MB, 3.5, 45.0),
        friendly("leslie3d_like", 7 * LINES_PER_MB, 4.5, 38.0),
        AppSpec {
            name: "astar_like",
            category: Category::Friendly,
            apki: 32.0,
            regions: vec![
                (
                    0.8,
                    RegionKind::Skewed {
                        lines: 3 * LINES_PER_MB,
                        gamma: 3.0,
                    },
                ),
                (0.2, RegionKind::Loop { lines: 8 * 1024 }),
            ],
            phases: Some((600_000, vec![vec![0.8, 0.2], vec![0.4, 0.6]])),
        },
        // --- Cache-fitting (5): loops of 1.1-1.9 MB with abrupt knees. ---
        fitting("soplex_like", (1.6 * LINES_PER_MB as f64) as u64, 512, 42.0),
        fitting("lbm_like", (1.9 * LINES_PER_MB as f64) as u64, 256, 50.0),
        fitting(
            "omnetpp_like",
            (1.2 * LINES_PER_MB as f64) as u64,
            768,
            36.0,
        ),
        fitting(
            "sphinx3_like",
            (1.4 * LINES_PER_MB as f64) as u64,
            384,
            44.0,
        ),
        fitting(
            "xalancbmk_like",
            (1.1 * LINES_PER_MB as f64) as u64,
            640,
            33.0,
        ),
        // --- Thrashing/streaming (4). ---
        streaming("mcf_like", 70.0),
        streaming("milc_like", 45.0),
        streaming("GemsFDTD_like", 40.0),
        streaming("libquantum_like", 55.0),
    ]
}

/// Looks up a catalog entry by name.
pub fn spec_by_name(name: &str) -> Option<AppSpec> {
    catalog().into_iter().find(|a| a.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_table3_split() {
        let apps = catalog();
        assert_eq!(apps.len(), 29);
        let count = |c: Category| apps.iter().filter(|a| a.category == c).count();
        assert_eq!(count(Category::Insensitive), 14);
        assert_eq!(count(Category::Friendly), 6);
        assert_eq!(count(Category::Fitting), 5);
        assert_eq!(count(Category::Streaming), 4);
    }

    #[test]
    fn names_are_unique() {
        let apps = catalog();
        let mut names: Vec<&str> = apps.iter().map(|a| a.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 29);
    }

    #[test]
    fn lookup_by_name() {
        assert!(spec_by_name("mcf_like").is_some());
        assert_eq!(
            spec_by_name("mcf_like").unwrap().category,
            Category::Streaming
        );
        assert!(spec_by_name("nonexistent").is_none());
    }

    #[test]
    fn fitting_apps_have_knees_above_1mb() {
        for app in catalog().iter().filter(|a| a.category == Category::Fitting) {
            let loop_lines: u64 = app
                .regions
                .iter()
                .map(|(_, r)| match r {
                    RegionKind::Loop { lines } => *lines,
                    _ => 0,
                })
                .sum();
            assert!(loop_lines > LINES_PER_MB, "{} knee below 1MB", app.name);
            assert!(loop_lines < 2 * LINES_PER_MB, "{} knee above 2MB", app.name);
        }
    }

    #[test]
    fn all_specs_instantiate() {
        for (i, app) in catalog().into_iter().enumerate() {
            let mut g = crate::app::AppGen::new(app, (i as u64) << 40, 42);
            for _ in 0..1000 {
                let r = g.next_ref();
                assert!(r.gap >= 1);
            }
        }
    }
}
