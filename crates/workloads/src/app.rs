//! Application models: region-structured synthetic address streams.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vantage_cache::LineAddr;

/// The four behavioural categories of Table 3.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    /// `n`: low L2 intensity, fits easily.
    Insensitive,
    /// `f`: gradual benefit from capacity.
    Friendly,
    /// `t`: abrupt benefit once the working set fits.
    Fitting,
    /// `s`: no benefit at realistic sizes.
    Streaming,
}

impl Category {
    /// The single-letter code used in mix class names (`n`/`f`/`t`/`s`).
    pub fn code(self) -> char {
        match self {
            Category::Insensitive => 'n',
            Category::Friendly => 'f',
            Category::Fitting => 't',
            Category::Streaming => 's',
        }
    }

    /// Parses a single-letter code.
    pub fn from_code(c: char) -> Option<Self> {
        match c {
            'n' => Some(Category::Insensitive),
            'f' => Some(Category::Friendly),
            't' => Some(Category::Fitting),
            's' => Some(Category::Streaming),
            _ => None,
        }
    }

    /// All categories, in class-name order.
    pub const ALL: [Category; 4] = [
        Category::Insensitive,
        Category::Friendly,
        Category::Fitting,
        Category::Streaming,
    ];
}

/// One memory region of an application's address space.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RegionKind {
    /// Uniform random accesses over a small, hot set of lines.
    Hot {
        /// Region size in cache lines.
        lines: u64,
    },
    /// Sequential cyclic sweep over a fixed set of lines (the classic
    /// cache-fitting / LRU-thrash pattern).
    Loop {
        /// Region size in cache lines.
        lines: u64,
    },
    /// Sequential streaming with no reuse (wraps after `wrap` lines, far
    /// beyond any cache size).
    Stream {
        /// Lines before the stream wraps around.
        wrap: u64,
    },
    /// Skewed (power-law) reuse over a large footprint: line index is
    /// `⌊lines · u^gamma⌋` for `u ~ U(0,1)`, so low indices are hot and the
    /// miss curve declines smoothly with capacity.
    Skewed {
        /// Region size in cache lines.
        lines: u64,
        /// Skew exponent (> 1 concentrates mass on a hot head).
        gamma: f64,
    },
}

/// A synthetic application model.
#[derive(Clone, Debug)]
pub struct AppSpec {
    /// A SPEC-evoking name (the model is synthetic, not a trace).
    pub name: &'static str,
    /// Behavioural category (what Table 3's classification should yield).
    pub category: Category,
    /// L2 accesses per kilo-instruction *issued by the core to the L1*;
    /// the L1 filter in front of the LLC sees exactly this stream.
    pub apki: f64,
    /// Weighted regions. Weights need not sum to 1 (they are normalized).
    pub regions: Vec<(f64, RegionKind)>,
    /// Optional phase behaviour: every `period` accesses, the region
    /// weights switch to the next vector in the cycle (each vector must
    /// have one weight per region).
    pub phases: Option<(u64, Vec<Vec<f64>>)>,
}

/// One generated memory reference: `gap` is the number of instructions this
/// reference accounts for (at least 1 — the memory instruction itself), so
/// driving a core is `cycles += gap - 1; issue(addr)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemRef {
    /// Instructions consumed, including the memory access.
    pub gap: u32,
    /// The line touched.
    pub addr: LineAddr,
}

/// A running instance of an [`AppSpec`], bound to a private address-space
/// base and a seed.
#[derive(Clone, Debug)]
pub struct AppGen {
    spec: AppSpec,
    base: u64,
    rng: SmallRng,
    /// Per-region cursors (used by `Loop` and `Stream`).
    cursors: Vec<u64>,
    /// Current phase index and accesses remaining in it.
    phase: usize,
    phase_left: u64,
    /// Mean instruction gap implied by `apki`.
    mean_gap: f64,
    accesses: u64,
}

impl AppGen {
    /// Instantiates `spec` with its lines based at `base` (each app in a
    /// mix gets a disjoint base) and deterministic randomness from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the spec has no regions, non-positive weights everywhere,
    /// or an inconsistent phase table.
    pub fn new(spec: AppSpec, base: u64, seed: u64) -> Self {
        assert!(!spec.regions.is_empty(), "spec needs at least one region");
        if let Some((period, phases)) = &spec.phases {
            assert!(*period > 0, "phase period must be non-zero");
            assert!(!phases.is_empty(), "phase table must be non-empty");
            assert!(
                phases.iter().all(|w| w.len() == spec.regions.len()),
                "each phase needs one weight per region"
            );
        }
        let mean_gap = (1000.0 / spec.apki).max(1.0);
        let phase_left = spec.phases.as_ref().map_or(u64::MAX, |(p, _)| *p);
        Self {
            cursors: vec![0; spec.regions.len()],
            rng: SmallRng::seed_from_u64(seed),
            base,
            spec,
            phase: 0,
            phase_left,
            mean_gap,
            accesses: 0,
        }
    }

    /// The spec this generator runs.
    pub fn spec(&self) -> &AppSpec {
        &self.spec
    }

    /// Total references generated so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    fn current_weights(&self) -> &[f64] {
        match &self.spec.phases {
            Some((_, phases)) => &phases[self.phase],
            None => &[],
        }
    }

    fn weight(&self, region: usize) -> f64 {
        let w = self.current_weights();
        if w.is_empty() {
            self.spec.regions[region].0
        } else {
            w[region]
        }
    }

    /// Generates the next memory reference.
    pub fn next_ref(&mut self) -> MemRef {
        self.accesses += 1;
        if let Some((period, phases)) = &self.spec.phases {
            self.phase_left -= 1;
            if self.phase_left == 0 {
                self.phase = (self.phase + 1) % phases.len();
                self.phase_left = *period;
            }
        }

        // Pick a region by weight.
        let total: f64 = (0..self.spec.regions.len()).map(|r| self.weight(r)).sum();
        debug_assert!(total > 0.0, "all region weights zero");
        let mut pick = self.rng.gen::<f64>() * total;
        let mut region = self.spec.regions.len() - 1;
        for r in 0..self.spec.regions.len() {
            pick -= self.weight(r);
            if pick <= 0.0 {
                region = r;
                break;
            }
        }

        // Regions are laid out at disjoint 2^32-line offsets within the
        // app's base.
        let region_base = self.base + ((region as u64) << 32);
        let line = match self.spec.regions[region].1 {
            RegionKind::Hot { lines } => self.rng.gen_range(0..lines),
            RegionKind::Loop { lines } => {
                let c = self.cursors[region];
                self.cursors[region] = (c + 1) % lines;
                c
            }
            RegionKind::Stream { wrap } => {
                let c = self.cursors[region];
                self.cursors[region] = (c + 1) % wrap;
                c
            }
            RegionKind::Skewed { lines, gamma } => {
                let u: f64 = self.rng.gen();
                ((lines as f64) * u.powf(gamma)) as u64
            }
        };

        // Instruction gap: geometric-ish jitter around the APKI-implied
        // mean, at least 1 instruction.
        let jitter = self.rng.gen_range(0.5..1.5);
        let gap = (self.mean_gap * jitter).round().max(1.0) as u32;
        MemRef {
            gap,
            addr: LineAddr(region_base + line),
        }
    }
}

impl vantage_snapshot::Snapshot for AppGen {
    /// The spec, base and APKI-derived mean gap are construction-time
    /// configuration; run state is the RNG stream, the per-region cursors
    /// and the phase machine.
    fn save_state(&self, enc: &mut vantage_snapshot::Encoder) {
        enc.put_u64_slice(&self.rng.state());
        enc.put_u64_slice(&self.cursors);
        enc.put_u64(self.phase as u64);
        enc.put_u64(self.phase_left);
        enc.put_u64(self.accesses);
    }

    fn load_state(
        &mut self,
        dec: &mut vantage_snapshot::Decoder<'_>,
    ) -> vantage_snapshot::Result<()> {
        let rng_state = dec.take_u64_vec()?;
        let Ok(rng_state) = <[u64; 4]>::try_from(rng_state) else {
            return Err(dec.invalid("RNG state must be 4 words"));
        };
        let cursors = dec.take_u64_vec()?;
        if cursors.len() != self.spec.regions.len() {
            return Err(dec.mismatch("cursor count differs from region count"));
        }
        for (c, (_, kind)) in cursors.iter().zip(&self.spec.regions) {
            let bound = match *kind {
                RegionKind::Loop { lines } => lines,
                RegionKind::Stream { wrap } => wrap,
                RegionKind::Hot { .. } | RegionKind::Skewed { .. } => u64::MAX,
            };
            if *c >= bound {
                return Err(dec.invalid("region cursor beyond its region"));
            }
        }
        let phase = dec.take_usize()?;
        let phase_left = dec.take_u64()?;
        match &self.spec.phases {
            Some((period, phases)) => {
                if phase >= phases.len() || phase_left == 0 || phase_left > *period {
                    return Err(dec.invalid("phase machine out of range"));
                }
            }
            None => {
                if phase != 0 || phase_left != u64::MAX {
                    return Err(dec.mismatch("phase state for a phaseless spec"));
                }
            }
        }
        self.accesses = dec.take_u64()?;
        self.rng = SmallRng::from_state(rng_state);
        self.cursors = cursors;
        self.phase = phase;
        self.phase_left = phase_left;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hot_spec() -> AppSpec {
        AppSpec {
            name: "test_hot",
            category: Category::Insensitive,
            apki: 20.0,
            regions: vec![(1.0, RegionKind::Hot { lines: 128 })],
            phases: None,
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = AppGen::new(hot_spec(), 0, 7);
        let mut b = AppGen::new(hot_spec(), 0, 7);
        for _ in 0..1000 {
            assert_eq!(a.next_ref(), b.next_ref());
        }
    }

    #[test]
    fn hot_region_stays_in_bounds() {
        let mut g = AppGen::new(hot_spec(), 1 << 40, 1);
        for _ in 0..10_000 {
            let r = g.next_ref();
            assert!(r.addr.0 >= 1 << 40);
            assert!(r.addr.0 < (1 << 40) + 128);
            assert!(r.gap >= 1);
        }
    }

    #[test]
    fn loop_region_cycles_sequentially() {
        let spec = AppSpec {
            name: "test_loop",
            category: Category::Fitting,
            apki: 50.0,
            regions: vec![(1.0, RegionKind::Loop { lines: 5 })],
            phases: None,
        };
        let mut g = AppGen::new(spec, 0, 2);
        let lines: Vec<u64> = (0..10).map(|_| g.next_ref().addr.0).collect();
        assert_eq!(lines, vec![0, 1, 2, 3, 4, 0, 1, 2, 3, 4]);
    }

    #[test]
    fn stream_region_never_reuses_before_wrap() {
        let spec = AppSpec {
            name: "test_stream",
            category: Category::Streaming,
            apki: 30.0,
            regions: vec![(1.0, RegionKind::Stream { wrap: 1 << 30 })],
            phases: None,
        };
        let mut g = AppGen::new(spec, 0, 3);
        let mut last = None;
        for _ in 0..10_000 {
            let a = g.next_ref().addr.0;
            if let Some(l) = last {
                assert_eq!(a, l + 1);
            }
            last = Some(a);
        }
    }

    #[test]
    fn skewed_region_is_head_heavy() {
        let spec = AppSpec {
            name: "test_skew",
            category: Category::Friendly,
            apki: 40.0,
            regions: vec![(
                1.0,
                RegionKind::Skewed {
                    lines: 100_000,
                    gamma: 4.0,
                },
            )],
            phases: None,
        };
        let mut g = AppGen::new(spec, 0, 4);
        let n = 50_000;
        let head = (0..n).filter(|_| g.next_ref().addr.0 < 10_000).count();
        // u^4 < 0.1 ⇔ u < 0.1^(1/4) ≈ 0.56: over half the accesses hit the
        // first tenth of the footprint.
        assert!(head as f64 > 0.5 * n as f64, "head hits: {head}/{n}");
    }

    #[test]
    fn gaps_track_apki() {
        let mut g = AppGen::new(hot_spec(), 0, 5);
        let n = 20_000u64;
        let total: u64 = (0..n).map(|_| u64::from(g.next_ref().gap)).sum();
        let apki = n as f64 * 1000.0 / total as f64;
        assert!((apki - 20.0).abs() < 2.0, "measured APKI {apki}");
    }

    #[test]
    fn phases_switch_weights() {
        let spec = AppSpec {
            name: "test_phase",
            category: Category::Friendly,
            apki: 10.0,
            regions: vec![
                (1.0, RegionKind::Hot { lines: 10 }),
                (0.0, RegionKind::Stream { wrap: 1 << 20 }),
            ],
            phases: Some((1000, vec![vec![1.0, 0.0], vec![0.0, 1.0]])),
        };
        let mut g = AppGen::new(spec, 0, 6);
        // Phase 0: all accesses in the hot region (< 10).
        for _ in 0..999 {
            assert!(g.next_ref().addr.0 < 10);
        }
        // Phase 1: all accesses stream (region 1 base offset = 1 << 32).
        let mut streamed = 0;
        for _ in 0..1000 {
            if g.next_ref().addr.0 >= (1 << 32) {
                streamed += 1;
            }
        }
        assert!(
            streamed >= 999,
            "phase switch did not take effect: {streamed}"
        );
    }

    #[test]
    fn category_codes_roundtrip() {
        for c in Category::ALL {
            assert_eq!(Category::from_code(c.code()), Some(c));
        }
        assert_eq!(Category::from_code('x'), None);
    }
}
