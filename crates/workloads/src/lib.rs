//! Synthetic SPEC-CPU2006-like applications and multiprogrammed mixes.
//!
//! The paper evaluates on SPEC CPU2006 under a Pin-based simulator; we do
//! not have those binaries or traces, so this crate provides synthetic
//! application models that reproduce what the evaluation actually depends
//! on: each application's *miss-curve shape* (misses as a function of cache
//! capacity), its access intensity, and its churn. The paper's own
//! methodology (§5, Table 3) classifies applications into four behavioural
//! categories by exactly these properties:
//!
//! * **Insensitive (n)** — fewer than 5 L2 misses per kilo-instruction at
//!   any size: small working sets that nearly always hit.
//! * **Cache-friendly (f)** — misses decrease gradually with capacity:
//!   skewed (hot/cold) reuse over a large footprint.
//! * **Cache-fitting (t)** — misses drop abruptly once the working set
//!   (over 1 MB) fits: cyclic loops over a fixed region.
//! * **Thrashing/streaming (s)** — no reuse at realistic sizes: sequential
//!   streams.
//!
//! [`catalog`] provides 29 named models mirroring Table 3's split
//! (14 n / 6 f / 5 t / 4 s); [`mixes`] builds the 35-class × k-mix
//! multiprogrammed workloads for any core count, following §5's
//! construction. Everything is seeded and deterministic.

pub mod app;
pub mod catalog;
pub mod mix;
pub mod service;
pub mod sharing;
pub mod trace;

pub use app::{AppGen, AppSpec, Category, MemRef, RegionKind};
pub use catalog::{catalog, spec_by_name};
pub use mix::{class_names, mixes, Mix};
pub use service::{ChurnConfigError, ChurnEvent, TenantChurn, TenantChurnConfig};
pub use sharing::{binary_channel_bits, count_misses, PrimeProbe, SharedHotSet};
pub use trace::{RefStream, TraceGen, TraceReader, TraceWriter};
