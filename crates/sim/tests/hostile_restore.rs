//! Hostile-restore corpus: bit-flipped, truncated, version-bumped and
//! well-formed-but-garbage checkpoints must every one come back as a typed
//! [`SnapshotError`] — never a panic, and never silently accepted.

use vantage_sim::{CmpSim, SchemeKind, SystemConfig};
use vantage_snapshot::{Encoder, SnapshotError, SnapshotReader, SnapshotWriter};
use vantage_workloads::mixes;

/// An encoder preloaded with raw bytes (for forging section payloads).
fn raw(bytes: &[u8]) -> Encoder {
    let mut e = Encoder::new();
    for &b in bytes {
        e.put_u8(b);
    }
    e
}

/// Extracts one section's raw payload from a serialized snapshot.
fn payload_of(reader: &SnapshotReader, name: &str) -> Vec<u8> {
    let mut dec = reader.section(name).expect("section exists");
    let mut out = Vec::with_capacity(dec.remaining());
    while dec.remaining() > 0 {
        out.push(dec.take_u8().expect("in bounds"));
    }
    out
}

const SECTIONS: [&str; 4] = ["sim/meta", "sim/cores", "sim/epoch", "sim/llc"];

/// A tiny machine so the corpus sweeps stay cheap.
fn tiny_sys() -> SystemConfig {
    let mut s = SystemConfig::small_scale();
    s.l1_lines = 64;
    s.l2_lines = 2048;
    s.instructions = 20_000;
    s.repartition_interval = 5_000;
    s
}

fn paused_sim() -> CmpSim {
    static HALFWAY: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    let sys = tiny_sys();
    let mix = &mixes(4, 1, 23)[6];
    let half = *HALFWAY.get_or_init(|| {
        let mut probe = CmpSim::new(sys.clone(), &SchemeKind::vantage_paper(), mix);
        probe.run();
        probe.steps() / 2
    });
    let mut sim = CmpSim::new(sys, &SchemeKind::vantage_paper(), mix);
    assert!(sim.run_for(half).is_none(), "sim must pause mid-run");
    sim
}

/// Attempts a full restore of `bytes` into a fresh compatible sim.
/// Returns the typed error, if any. Panics are the failure being hunted,
/// so nothing here catches unwinds — the test harness reports them.
fn try_restore(bytes: &[u8]) -> Result<(), SnapshotError> {
    let reader = SnapshotReader::from_bytes(bytes)?;
    paused_sim().restore_checkpoint(&reader)
}

#[test]
fn pristine_checkpoint_restores() {
    let bytes = paused_sim().write_checkpoint().to_bytes();
    try_restore(&bytes).expect("the unmodified corpus seed must restore");
}

#[test]
fn every_truncation_is_rejected() {
    let bytes = paused_sim().write_checkpoint().to_bytes();
    for cut in (0..bytes.len()).step_by(7) {
        let err = try_restore(&bytes[..cut]);
        assert!(
            err.is_err(),
            "truncation to {cut}/{} bytes was accepted",
            bytes.len()
        );
    }
    // And the last byte specifically, so off-by-one at the tail is covered.
    assert!(try_restore(&bytes[..bytes.len() - 1]).is_err());
}

#[test]
fn every_sampled_bit_flip_is_rejected() {
    let bytes = paused_sim().write_checkpoint().to_bytes();
    let mut rejected = 0u64;
    for byte in (0..bytes.len()).step_by(41) {
        for bit in 0..8 {
            let mut evil = bytes.clone();
            evil[byte] ^= 1 << bit;
            match try_restore(&evil) {
                Err(_) => rejected += 1,
                Ok(()) => panic!("bit flip at byte {byte} bit {bit} was accepted"),
            }
        }
    }
    assert!(rejected > 100, "corpus too small: {rejected} cases");
}

#[test]
fn wrong_magic_and_version_are_typed() {
    let bytes = paused_sim().write_checkpoint().to_bytes();

    let mut evil = bytes.clone();
    evil[0] ^= 0xFF;
    assert!(matches!(
        SnapshotReader::from_bytes(&evil),
        Err(SnapshotError::BadMagic)
    ));

    // The version lives right after the 8-byte magic; a future version
    // must be refused, not guessed at.
    let mut evil = bytes.clone();
    evil[8..12].copy_from_slice(&99u32.to_le_bytes());
    assert!(matches!(
        SnapshotReader::from_bytes(&evil),
        Err(SnapshotError::UnsupportedVersion { found: 99, .. })
    ));
}

#[test]
fn valid_crc_garbage_payloads_are_typed_errors() {
    // Checksums pass, structure doesn't: every section's decoder must
    // reject hostile content on its own merits, not lean on the CRC.
    // Each forgery keeps the other three sections pristine so the
    // garbage actually reaches the decoder under test.
    let good = paused_sim().write_checkpoint().to_bytes();
    let good_reader = SnapshotReader::from_bytes(&good).unwrap();
    let shapes: Vec<(&str, Vec<u8>)> = vec![
        ("empty", vec![]),
        ("ones", vec![0xFF; 64]),
        ("zeros", vec![0; 256]),
        // A hostile length prefix: claims a 2^64-1 element sequence.
        ("hostile-length", u64::MAX.to_le_bytes().to_vec()),
        // Truncated real payload: right bytes, wrong amount.
        ("half-real", {
            let p = payload_of(&good_reader, "sim/llc");
            p[..p.len() / 2].to_vec()
        }),
        // Real payload with trailing garbage the decoder must not ignore.
        ("real-plus-tail", {
            let mut p = payload_of(&good_reader, "sim/meta");
            p.extend_from_slice(&[0xEE; 9]);
            p
        }),
    ];
    for section in SECTIONS {
        for (label, payload) in &shapes {
            let mut w = SnapshotWriter::new();
            for name in SECTIONS {
                if name == section {
                    w.add(name, raw(payload));
                } else {
                    w.add(name, raw(&payload_of(&good_reader, name)));
                }
            }
            let err = try_restore(&w.to_bytes());
            assert!(err.is_err(), "{section}/{label}: garbage accepted");
        }
    }
}

#[test]
fn missing_and_duplicate_sections_are_typed() {
    // Drop one required section at a time from a good checkpoint.
    let good = paused_sim().write_checkpoint().to_bytes();
    let good_reader = SnapshotReader::from_bytes(&good).unwrap();
    for dropped in SECTIONS {
        let mut w = SnapshotWriter::new();
        for name in SECTIONS {
            if name != dropped {
                w.add(name, raw(&payload_of(&good_reader, name)));
            }
        }
        let err = try_restore(&w.to_bytes()).unwrap_err();
        assert!(
            matches!(err, SnapshotError::MissingSection { .. }),
            "dropping {dropped}: wanted a missing-section error, got {err:?}"
        );
    }

    let mut w = SnapshotWriter::new();
    w.add("sim/meta", raw(&[0; 8]));
    w.add("sim/meta", raw(&[0; 8]));
    assert!(matches!(
        SnapshotReader::from_bytes(&w.to_bytes()),
        Err(SnapshotError::DuplicateSection { .. })
    ));
}

#[test]
fn a_rejected_restore_does_not_poison_the_host() {
    // After refusing garbage, the same sim must still accept a good
    // checkpoint and resume bit-identically — rejection never leaves the
    // host wedged in a half-restored state it can't recover from.
    let sys = tiny_sys();
    let mix = &mixes(4, 1, 23)[6];
    let kind = SchemeKind::vantage_paper();

    let mut straight = CmpSim::new(sys.clone(), &kind, mix);
    let want = straight.run();

    let warm = paused_sim();
    let good = warm.write_checkpoint().to_bytes();

    let mut evil = good.clone();
    let tamper = evil.len() / 2;
    evil[tamper] ^= 0x10;

    let mut victim = CmpSim::new(sys, &kind, mix);
    if let Ok(reader) = SnapshotReader::from_bytes(&evil) {
        assert!(victim.restore_checkpoint(&reader).is_err());
    }
    let reader = SnapshotReader::from_bytes(&good).expect("good bytes parse");
    victim
        .restore_checkpoint(&reader)
        .expect("good checkpoint restores after a rejection");
    let got = victim.run();
    assert_eq!(want.l2_misses, got.l2_misses);
    assert_eq!(want.ipc, got.ipc);
}
