//! Tentpole acceptance tests for crash-safe checkpoint/restore: run-straight
//! vs checkpoint→restore→continue must be bit-identical for every scheme at
//! every split point, including under active fault injection; forked replicas
//! from one warmup checkpoint must agree; and guarded live reconfiguration
//! must roll back cleanly when post-swap invariants fail.

use vantage::{FaultKind, FaultPlan};
use vantage_sim::{
    ActivePolicy, ArrayKind, BaselineRank, CmpSim, PolicyKind, Reconfig, ReconfigError, SchemeKind,
    SimResult, SystemConfig,
};
use vantage_snapshot::{SnapshotError, SnapshotReader};
use vantage_telemetry::{to_csv_row, RingSink, Telemetry};
use vantage_workloads::mixes;

fn quick_sys() -> SystemConfig {
    let mut s = SystemConfig::small_scale();
    s.instructions = 200_000;
    s.repartition_interval = 40_000;
    s
}

/// One FNV-1a fold step over a `u64` word.
fn fnv(h: u64, x: u64) -> u64 {
    (h ^ x).wrapping_mul(0x100_0000_01b3)
}

/// FNV-1a digest of a result's partition-size trace.
fn trace_digest(r: &SimResult) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325;
    for s in &r.trace {
        h = fnv(h, s.cycle);
        for &t in &s.targets {
            h = fnv(h, t);
        }
        for &a in &s.actuals {
            h = fnv(h, a);
        }
    }
    h
}

fn assert_results_identical(want: &SimResult, got: &SimResult, what: &str) {
    assert_eq!(want.ipc, got.ipc, "{what}: IPC diverged");
    assert_eq!(
        want.throughput, got.throughput,
        "{what}: throughput diverged"
    );
    assert_eq!(
        want.l2_accesses, got.l2_accesses,
        "{what}: accesses diverged"
    );
    assert_eq!(
        want.l2_misses, got.l2_misses,
        "{what}: miss counts diverged"
    );
    assert_eq!(want.mpki, got.mpki, "{what}: MPKI diverged");
    assert_eq!(
        want.managed_eviction_fraction, got.managed_eviction_fraction,
        "{what}: eviction fraction diverged"
    );
    assert_eq!(
        want.invariant_recoveries, got.invariant_recoveries,
        "{what}: recovery counts diverged"
    );
    assert_eq!(
        trace_digest(want),
        trace_digest(got),
        "{what}: trace digests diverged"
    );
    assert_eq!(
        want.priority_samples, got.priority_samples,
        "{what}: priority samples diverged"
    );
}

/// Checkpoints `warm` at its current point and resumes a fresh sim from the
/// serialized bytes, returning the resumed sim.
fn fork(warm: &CmpSim, mut fresh: CmpSim) -> CmpSim {
    let bytes = warm.write_checkpoint().to_bytes();
    let reader = SnapshotReader::from_bytes(&bytes).expect("checkpoint parses");
    fresh
        .restore_checkpoint(&reader)
        .expect("checkpoint restores");
    fresh
}

#[test]
fn resume_is_bit_identical_for_every_scheme_at_three_split_points() {
    let base = quick_sys();
    let mut banked = base.clone();
    banked.banks = 4;
    banked.bank_jobs = 2; // ParallelBankedLlc with a live worker pool
    let mix = &mixes(4, 1, 7)[12];
    let cases: Vec<(SchemeKind, SystemConfig)> = vec![
        (SchemeKind::vantage_paper(), base.clone()),
        (SchemeKind::WayPart, base.clone()),
        (SchemeKind::Pipp, base.clone()),
        (SchemeKind::vantage_paper(), banked),
    ];
    for (kind, sys) in cases {
        let build = || {
            let mut s = CmpSim::new(sys.clone(), &kind, mix);
            s.enable_trace(25_000);
            s.enable_priority_probe();
            s
        };
        let mut straight = build();
        let want = straight.run();
        let total = straight.steps();
        assert!(total > 100, "run too short to split");

        for split in [total / 4, total / 2, total * 3 / 4] {
            let mut warm = build();
            assert!(
                warm.run_for(split).is_none(),
                "{}: paused before completion",
                warm.label()
            );
            assert_eq!(warm.steps(), split);
            let mut resumed = fork(&warm, build());
            assert_eq!(resumed.steps(), split, "checkpoint clock restored");
            let got = resumed.run();
            assert_results_identical(&want, &got, &format!("{} @ {split}", got.label));
        }
    }
}

#[test]
fn resume_at_arbitrary_odd_split_points() {
    // Tiny machine so many split points stay cheap.
    let mut sys = quick_sys();
    sys.instructions = 40_000;
    sys.repartition_interval = 9_000;
    let kind = SchemeKind::vantage_paper();
    let mix = &mixes(4, 1, 3)[5];
    let mut straight = CmpSim::new(sys.clone(), &kind, mix);
    let want = straight.run();
    let total = straight.steps();
    for split in [1, 13, 997, total / 7, total / 3, total - 1] {
        let mut warm = CmpSim::new(sys.clone(), &kind, mix);
        assert!(warm.run_for(split).is_none());
        let mut resumed = fork(&warm, CmpSim::new(sys.clone(), &kind, mix));
        let got = resumed.run();
        assert_results_identical(&want, &got, &format!("odd split {split}"));
    }
}

#[test]
fn resume_is_bit_identical_under_active_fault_injection() {
    let mut sys = quick_sys();
    sys.check_invariants = true;
    sys.scrub_period = Some(10_000);
    let kind = SchemeKind::vantage_paper();
    let mix = &mixes(4, 1, 11)[3];
    let build = || {
        let mut s = CmpSim::new(sys.clone(), &kind, mix);
        assert!(s.set_fault_plan(FaultPlan::new(5, 400, &FaultKind::INJECTABLE)));
        s
    };
    let mut straight = build();
    let want = straight.run();
    let total = straight.steps();
    let want_log = format!("{:?}", straight.scheme().fault_plan().unwrap().log());
    assert!(
        !straight.scheme().fault_plan().unwrap().log().is_empty(),
        "fault plan never fired; injection not active"
    );

    for split in [total / 3, total / 2, total * 2 / 3] {
        let mut warm = build();
        assert!(warm.run_for(split).is_none());
        let mut resumed = fork(&warm, build());
        let got = resumed.run();
        assert_results_identical(&want, &got, &format!("faulted @ {split}"));
        let got_log = format!("{:?}", resumed.scheme().fault_plan().unwrap().log());
        assert_eq!(want_log, got_log, "fault-injection logs diverged");
    }
}

#[test]
fn telemetry_event_multisets_match_across_resume() {
    let sys = quick_sys();
    let kind = SchemeKind::vantage_paper();
    let mix = &mixes(4, 1, 13)[8];

    let rows = |reader: &vantage_telemetry::RingReader| -> Vec<String> {
        assert_eq!(reader.overwritten(), 0, "ring too small for the run");
        reader.records().iter().map(to_csv_row).collect()
    };

    let mut straight = CmpSim::new(sys.clone(), &kind, mix);
    let (sink, straight_reader) = RingSink::with_capacity(1 << 21);
    assert!(straight.set_telemetry(Telemetry::new(Box::new(sink), 256)));
    straight.run();
    let total = straight.steps();
    let mut want = rows(&straight_reader);

    let mut warm = CmpSim::new(sys.clone(), &kind, mix);
    let (sink, warm_reader) = RingSink::with_capacity(1 << 21);
    assert!(warm.set_telemetry(Telemetry::new(Box::new(sink), 256)));
    assert!(warm.run_for(total / 2).is_none());

    let mut resumed = CmpSim::new(sys.clone(), &kind, mix);
    let (sink, resumed_reader) = RingSink::with_capacity(1 << 21);
    assert!(resumed.set_telemetry(Telemetry::new(Box::new(sink), 256)));
    let resumed = &mut fork(&warm, resumed);
    resumed.run();

    let mut got = rows(&warm_reader);
    got.extend(rows(&resumed_reader));
    want.sort();
    got.sort();
    assert_eq!(want, got, "telemetry event multisets differ");
}

#[test]
fn fork_sweep_replicas_from_one_warmup_are_identical() {
    let sys = quick_sys(); // default policy: UCP
    let kind = SchemeKind::vantage_paper();
    let mix = &mixes(4, 1, 5)[20];

    let mut probe = CmpSim::new(sys.clone(), &kind, mix);
    probe.run();
    let total = probe.steps();

    let mut warm = CmpSim::new(sys.clone(), &kind, mix);
    assert!(warm.run_for(total / 3).is_none());
    let bytes = warm.write_checkpoint().to_bytes();
    let reader = SnapshotReader::from_bytes(&bytes).expect("warmup checkpoint parses");

    for policy in PolicyKind::ALL {
        let run_fork = || {
            let mut replica = CmpSim::new(sys.clone(), &kind, mix);
            replica.restore_checkpoint(&reader).expect("fork restores");
            if policy != PolicyKind::Ucp {
                replica
                    .reconfigure(&Reconfig::Policy(policy))
                    .expect("default-configured hot-swap succeeds");
            }
            replica.run()
        };
        let a = run_fork();
        let b = run_fork();
        assert_results_identical(&a, &b, &format!("fork replicas ({})", policy.label()));
        assert_eq!(a.reconfig_rollbacks, 0);
    }
}

#[test]
fn hot_swapped_policy_survives_a_checkpoint() {
    let sys = quick_sys(); // config says UCP
    let kind = SchemeKind::vantage_paper();
    let mix = &mixes(4, 1, 9)[14];
    let mut sim = CmpSim::new(sys.clone(), &kind, mix);
    assert!(sim.run_for(30_000).is_none());
    sim.reconfigure(&Reconfig::Policy(PolicyKind::Equal))
        .expect("swap to equal shares");
    assert_eq!(sim.epoch().active_policy(), Some(&ActivePolicy::Equal));

    // A resumed replica must come back with the swapped policy, not the
    // config default.
    let resumed = fork(&sim, CmpSim::new(sys.clone(), &kind, mix));
    assert_eq!(resumed.epoch().active_policy(), Some(&ActivePolicy::Equal));

    // And both continuations stay in lockstep.
    let want = sim.run();
    let mut resumed = resumed;
    let got = resumed.run();
    assert_results_identical(&want, &got, "hot-swapped resume");
}

#[test]
fn failed_reconfigure_rolls_back_and_counts_the_recovery() {
    let sys = quick_sys();
    let kind = SchemeKind::vantage_paper();
    let mix = &mixes(4, 1, 17)[2];
    let mut sim = CmpSim::new(sys.clone(), &kind, mix);
    assert!(sim.run_for(40_000).is_none());

    let epoch_before = section_payload(&sim, "sim/epoch");

    // Floors that cannot all fit: QosGuarantee scales them down, which
    // violates the floor guarantee — the post-swap invariant check must
    // catch it and roll back.
    let err = sim
        .reconfigure(&Reconfig::QosContract {
            floors: vec![20_000; 4],
            weights: vec![1.0; 4],
        })
        .unwrap_err();
    assert!(
        matches!(err, ReconfigError::RolledBack(_)),
        "wanted rollback, got {err:?}"
    );
    assert_eq!(
        sim.epoch().active_policy(),
        Some(&ActivePolicy::Ucp),
        "active policy must revert to the pre-swap selection"
    );

    // The controller state is byte-identical to the pre-swap snapshot
    // except the rollback counter (the final u64 of the payload).
    let epoch_after = section_payload(&sim, "sim/epoch");
    assert_eq!(epoch_before.len(), epoch_after.len());
    let (body_b, ctr_b) = epoch_before.split_at(epoch_before.len() - 8);
    let (body_a, ctr_a) = epoch_after.split_at(epoch_after.len() - 8);
    assert_eq!(
        body_b, body_a,
        "controller state changed beyond the counter"
    );
    assert_eq!(
        u64::from_le_bytes(ctr_a.try_into().unwrap()),
        u64::from_le_bytes(ctr_b.try_into().unwrap()) + 1,
        "rollback not counted"
    );

    // Structurally invalid requests are rejected before any state changes.
    let err = sim
        .reconfigure(&Reconfig::QosContract {
            floors: vec![1; 2],
            weights: vec![1.0; 2],
        })
        .unwrap_err();
    assert!(matches!(err, ReconfigError::BadRequest(_)));
    let err = sim
        .reconfigure(&Reconfig::QosContract {
            floors: vec![1; 4],
            weights: vec![f64::NAN; 4],
        })
        .unwrap_err();
    assert!(matches!(err, ReconfigError::BadRequest(_)));

    // A feasible contract then goes through, and the run completes with
    // exactly the one rollback on the books.
    sim.reconfigure(&Reconfig::QosContract {
        floors: vec![1_000; 4],
        weights: vec![1.0, 1.0, 2.0, 4.0],
    })
    .expect("feasible contract installs");
    let r = sim.run();
    assert_eq!(r.reconfig_rollbacks, 1);
    assert_eq!(r.invariant_recoveries, 0);
}

#[test]
fn unmanaged_schemes_refuse_reconfiguration() {
    let kind = SchemeKind::Baseline {
        array: ArrayKind::SetAssoc { ways: 16 },
        rank: BaselineRank::Lru,
    };
    let mix = &mixes(4, 1, 7)[0];
    let mut sim = CmpSim::new(quick_sys(), &kind, mix);
    assert_eq!(
        sim.reconfigure(&Reconfig::Policy(PolicyKind::Equal)),
        Err(ReconfigError::Unmanaged)
    );
}

#[test]
fn restore_into_a_mismatched_host_is_a_typed_error() {
    let sys = quick_sys();
    let kind = SchemeKind::vantage_paper();
    let mix = &mixes(4, 1, 7)[12];
    let mut warm = CmpSim::new(sys.clone(), &kind, mix);
    assert!(warm.run_for(20_000).is_none());
    let bytes = warm.write_checkpoint().to_bytes();
    let reader = SnapshotReader::from_bytes(&bytes).unwrap();

    // Different seed: rejected up front with a mismatch.
    let mut other = sys.clone();
    other.seed ^= 0xBAD;
    let err = CmpSim::new(other, &kind, mix)
        .restore_checkpoint(&reader)
        .unwrap_err();
    assert!(matches!(err, SnapshotError::Mismatch { .. }), "{err:?}");

    // Different scheme: some section refuses, typed, no panic.
    assert!(CmpSim::new(sys.clone(), &SchemeKind::WayPart, mix)
        .restore_checkpoint(&reader)
        .is_err());
}

/// Extracts one named section's payload from a sim checkpoint.
fn section_payload(sim: &CmpSim, name: &str) -> Vec<u8> {
    let bytes = sim.write_checkpoint().to_bytes();
    let reader = SnapshotReader::from_bytes(&bytes).expect("own checkpoint parses");
    let mut dec = reader.section(name).expect("section exists");
    let mut out = Vec::with_capacity(dec.remaining());
    while dec.remaining() > 0 {
        out.push(dec.take_u8().expect("in bounds"));
    }
    out
}
