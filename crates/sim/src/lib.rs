//! CMP simulator: in-order cores with private L1s sharing a partitioned L2.
//!
//! Reproduces the paper's modeled systems (§5, Table 2): in-order x86-like
//! cores with IPC = 1 except on memory accesses, split private L1s, a
//! shared non-inclusive L2 where the partitioning schemes live, and a
//! fixed-latency, bandwidth-limited memory system. Cores are driven by the
//! synthetic application models from `vantage-workloads`; UCP monitors
//! every L2 access and repartitions periodically.
//!
//! * [`SystemConfig`] — machine parameters, with [`SystemConfig::small_scale`]
//!   (4 cores, 2 MB L2, 16-way baseline) and
//!   [`SystemConfig::large_scale`] (32 cores, 8 MB L2, 64-way baseline)
//!   mirroring the paper's two machines.
//! * [`Scheme`] — the LLC under test: unpartitioned baseline (LRU or RRIP
//!   variants), way-partitioning, PIPP, or Vantage over a configurable
//!   array — optionally sharded across address-interleaved banks
//!   ([`SystemConfig::banks`]) and served by a worker pool
//!   ([`SystemConfig::bank_jobs`]).
//! * [`LlcBuilder`] (via [`Scheme::builder`]) — the fluent front door:
//!   telemetry, fault plans, scrub periods and banking in one chain.
//! * [`CmpSim`] — the event-interleaved multicore simulation; returns
//!   per-core IPCs, miss statistics, optional partition-size traces
//!   (Fig. 8) and demotion/eviction priority samples.

pub mod builder;
pub mod cmp;
pub mod config;
pub mod epoch;
pub mod l1;
pub mod metrics;
pub mod scheme;

pub use builder::LlcBuilder;
pub use cmp::{run_solo, CmpSim, SimResult, TraceSample};
pub use config::{ArrayKind, BaselineRank, PolicyKind, SchemeKind, SysConfigError, SystemConfig};
pub use epoch::{ActivePolicy, EpochController, Reconfig, ReconfigError, SimError};
pub use l1::L1;
pub use scheme::{BuildError, Scheme};
