//! Fluent scheme construction.
//!
//! [`LlcBuilder`] is the one front door to a live LLC: it collapses the
//! `try_new` constructors scattered across the scheme types and
//! the post-construction setters (telemetry installation, fault plans,
//! scrub periods, banking) into a single validated chain:
//!
//! ```
//! use vantage_sim::{Scheme, SchemeKind, SystemConfig};
//!
//! let scheme = Scheme::builder(SchemeKind::vantage_paper(), SystemConfig::small_scale())
//!     .banks(4)
//!     .bank_jobs(2)
//!     .try_build().expect("valid scheme config");
//! assert_eq!(scheme.as_sharded().unwrap().num_banks(), 4);
//! ```

use vantage::FaultPlan;
use vantage_telemetry::Telemetry;

use crate::config::{SchemeKind, SystemConfig};
use crate::scheme::{BuildError, Scheme};

/// A fluent builder for [`Scheme`]s; see the [module docs](self).
///
/// Created by [`Scheme::builder`]. Defaults come from the given
/// [`SystemConfig`] (`banks`, `bank_jobs`, `scrub_period`); each chained
/// call overrides one knob, and [`LlcBuilder::try_build`] validates the
/// result as a whole.
pub struct LlcBuilder {
    kind: SchemeKind,
    sys: SystemConfig,
    telemetry: Option<Telemetry>,
    fault_plan: Option<FaultPlan>,
}

impl Scheme {
    /// Starts a fluent build of `kind` on machine `sys` — the preferred
    /// construction path; [`Scheme::try_build`] covers the
    /// no-frills case.
    pub fn builder(kind: SchemeKind, sys: SystemConfig) -> LlcBuilder {
        LlcBuilder {
            kind,
            sys,
            telemetry: None,
            fault_plan: None,
        }
    }
}

impl LlcBuilder {
    /// Shards the LLC across `banks` address-interleaved banks.
    pub fn banks(mut self, banks: usize) -> Self {
        self.sys.banks = banks;
        self
    }

    /// Serves banked batches with `jobs` worker threads (`<= 1` is serial).
    pub fn bank_jobs(mut self, jobs: usize) -> Self {
        self.sys.bank_jobs = jobs;
        self
    }

    /// Selects the execution engine for banked machines (see
    /// [`SystemConfig::engine`]); ignored when `banks <= 1`.
    pub fn engine(mut self, engine: vantage::EngineKind) -> Self {
        self.sys.engine = engine;
        self
    }

    /// Installs a telemetry producer on the built LLC (fanned out per bank
    /// on banked machines).
    pub fn telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Attaches a fault-injection schedule, polled on every access.
    /// Supported by unbanked Vantage schemes only; see
    /// [`BuildError::FaultPlanUnsupported`].
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Runs a Vantage recovery scrub every `period` accesses (the recovery
    /// half of a fault-tolerance loop; zero disables).
    pub fn scrub_period(mut self, period: u64) -> Self {
        self.sys.scrub_period = Some(period);
        self
    }

    /// Builds the scheme.
    ///
    /// # Errors
    ///
    /// Everything [`Scheme::try_build`] reports, plus
    /// [`BuildError::System`] for an inconsistent machine,
    /// [`BuildError::FaultPlanUnsupported`] when a fault plan was requested
    /// for a scheme that cannot host one, and
    /// [`BuildError::TelemetryRejected`] when the scheme refuses the
    /// telemetry handle.
    pub fn try_build(mut self) -> Result<Scheme, BuildError> {
        self.sys.try_validate()?;
        let mut scheme = Scheme::try_build(&self.kind, &self.sys)?;
        if let Some(v) = scheme.vantage_mut() {
            v.set_scrub_period(self.sys.scrub_period);
            v.set_fault_plan(self.fault_plan.take());
        }
        if self.fault_plan.is_some() {
            return Err(BuildError::FaultPlanUnsupported);
        }
        if let Some(t) = self.telemetry.take() {
            // Unbanked schemes store a disabled handle inertly; reject it
            // here so every scheme treats it the same way.
            if !t.enabled() || !scheme.set_telemetry(t) {
                return Err(BuildError::TelemetryRejected);
            }
        }
        Ok(scheme)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ArrayKind, BaselineRank};
    use vantage::{FaultKind, FaultPlan};
    use vantage_partitioning::{AccessRequest, PartitionId};
    use vantage_telemetry::{RingSink, Telemetry};

    #[test]
    fn builder_stacks_banks_telemetry_and_jobs() {
        let (sink, reader) = RingSink::with_capacity(1 << 16);
        let mut s = Scheme::builder(SchemeKind::vantage_paper(), SystemConfig::small_scale())
            .banks(4)
            .bank_jobs(2)
            .telemetry(Telemetry::new(Box::new(sink), 128))
            .try_build()
            .expect("valid scheme config");
        assert_eq!(s.as_sharded().unwrap().num_banks(), 4);
        assert!(s.uses_ucp());
        for i in 0..4096u64 {
            s.llc_mut().access(AccessRequest::read(
                PartitionId::from_index((i % 4) as usize),
                vantage_cache::LineAddr(i % 900),
            ));
        }
        assert!(!reader.is_empty(), "telemetry fan-out reached the sink");
        assert!(s.take_telemetry().is_some());
    }

    #[test]
    fn builder_wires_the_fault_loop_into_vantage() {
        let mut s = Scheme::builder(SchemeKind::vantage_paper(), SystemConfig::small_scale())
            .fault_plan(FaultPlan::new(3, 200, &FaultKind::INJECTABLE))
            .scrub_period(1_000)
            .try_build()
            .expect("valid scheme config");
        for i in 0..8192u64 {
            s.llc_mut().access(AccessRequest::read(
                PartitionId::from_index((i % 4) as usize),
                vantage_cache::LineAddr(i % 700),
            ));
        }
        assert!(!s.fault_plan().expect("plan attached").log().is_empty());
        let inv = s.has_invariants().expect("vantage scheme");
        assert!(inv.scrubs() > 0, "scrub period not applied");
    }

    #[test]
    fn fault_plan_rejected_off_vantage() {
        let kind = SchemeKind::Baseline {
            array: ArrayKind::Z4_52,
            rank: BaselineRank::Lru,
        };
        let err = Scheme::builder(kind, SystemConfig::small_scale())
            .fault_plan(FaultPlan::new(1, 100, &FaultKind::INJECTABLE))
            .try_build()
            .err();
        assert_eq!(err, Some(BuildError::FaultPlanUnsupported));
    }

    #[test]
    fn builder_selects_the_pipelined_engine() {
        let mut s = Scheme::builder(SchemeKind::vantage_paper(), SystemConfig::small_scale())
            .banks(4)
            .engine(vantage::EngineKind::Pipelined)
            .try_build()
            .expect("valid scheme config");
        assert!(matches!(s, Scheme::Pipelined { .. }));
        assert_eq!(s.as_sharded().unwrap().num_banks(), 4);
        let mut out = Vec::new();
        let reqs: Vec<AccessRequest> = (0..2000u64)
            .map(|i| {
                AccessRequest::read(
                    PartitionId::from_index((i % 4) as usize),
                    vantage_cache::LineAddr(i % 900),
                )
            })
            .collect();
        s.llc_mut().access_batch(&reqs, &mut out);
        s.epoch_barrier();
        assert_eq!(out.len(), 2000);
        assert!(s.llc_mut().stats_mut().total_hits() > 0);
    }

    #[test]
    fn builder_validates_the_machine() {
        use crate::config::SysConfigError;
        let err = Scheme::builder(SchemeKind::vantage_paper(), SystemConfig::small_scale())
            .banks(3) // 32K lines do not divide into 3 banks
            .try_build()
            .err();
        assert_eq!(err, Some(BuildError::System(SysConfigError::BankGeometry)));
    }

    #[test]
    fn disabled_telemetry_is_a_typed_error() {
        let err = Scheme::builder(SchemeKind::vantage_paper(), SystemConfig::small_scale())
            .telemetry(Telemetry::disabled())
            .try_build()
            .err();
        assert_eq!(err, Some(BuildError::TelemetryRejected));
    }
}
