//! System and scheme configuration.

use vantage::{EngineKind, VantageConfig};
use vantage_cache::ShareMode;

/// Cache array families available to schemes that are array-agnostic.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ArrayKind {
    /// Hashed set-associative with `ways` ways.
    SetAssoc {
        /// Associativity.
        ways: usize,
    },
    /// A zcache with `ways` ways and `candidates` replacement candidates
    /// (Z4/52 is `ways: 4, candidates: 52`).
    Z {
        /// Physical ways.
        ways: usize,
        /// Replacement candidates per walk.
        candidates: usize,
    },
    /// Skew-associative with `ways` ways.
    Skew {
        /// Physical ways (one hash function each).
        ways: usize,
    },
    /// The idealized uniform-random-candidates array (§6.2 model check).
    Random {
        /// Candidates per replacement.
        candidates: usize,
    },
}

impl ArrayKind {
    /// The paper's Z4/52 configuration.
    pub const Z4_52: ArrayKind = ArrayKind::Z {
        ways: 4,
        candidates: 52,
    };
    /// The cheaper Z4/16 configuration (Fig. 10).
    pub const Z4_16: ArrayKind = ArrayKind::Z {
        ways: 4,
        candidates: 16,
    };
}

/// Replacement policy for the unpartitioned baseline (Fig. 6/7 baselines
/// and the RRIP comparison of Fig. 11).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BaselineRank {
    /// Least-recently-used.
    Lru,
    /// Static RRIP.
    Srrip,
    /// Dynamic RRIP (bucket dueling).
    Drrip,
    /// Thread-aware dynamic RRIP.
    TaDrrip,
}

/// Which LLC scheme a simulation runs.
#[derive(Clone, Debug)]
pub enum SchemeKind {
    /// Unpartitioned shared cache; UCP is not engaged.
    Baseline {
        /// Array family.
        array: ArrayKind,
        /// Replacement policy.
        rank: BaselineRank,
    },
    /// Way-partitioning on the machine's set-associative geometry.
    WayPart,
    /// PIPP on the machine's set-associative geometry.
    Pipp,
    /// Vantage over `array` with `cfg`. With `drrip = true`, partitions run
    /// SRRIP/BRRIP chosen per interval by RRIP UMONs (Vantage-DRRIP, §6.2);
    /// `cfg.rank` must then be [`RankMode::Rrip`](vantage::RankMode::Rrip).
    Vantage {
        /// Array family.
        array: ArrayKind,
        /// Vantage controller configuration.
        cfg: VantageConfig,
        /// Enable per-partition SRRIP/BRRIP selection via RRIP UMONs.
        drrip: bool,
    },
}

impl SchemeKind {
    /// The paper's standard Vantage configuration: Z4/52, `u = 5%`,
    /// `A_max = 0.5`, `slack = 10%`, LRU.
    pub fn vantage_paper() -> Self {
        SchemeKind::Vantage {
            array: ArrayKind::Z4_52,
            cfg: VantageConfig::default(),
            drrip: false,
        }
    }

    /// Short display name for result tables.
    pub fn label(&self) -> String {
        match self {
            SchemeKind::Baseline { array, rank } => {
                format!("{}-{}", rank_label(*rank), array_label(*array))
            }
            SchemeKind::WayPart => "WayPart".into(),
            SchemeKind::Pipp => "PIPP".into(),
            SchemeKind::Vantage { array, drrip, .. } => {
                if *drrip {
                    format!("Vantage-DRRIP-{}", array_label(*array))
                } else {
                    format!("Vantage-{}", array_label(*array))
                }
            }
        }
    }
}

/// Which [`AllocationPolicy`](vantage_ucp::AllocationPolicy) drives
/// repartitioning on policy-managed schemes (everything but the
/// unpartitioned baselines). Selected via `--policy` in the experiments
/// CLI; [`EpochController`](crate::EpochController) instantiates it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PolicyKind {
    /// UCP/Lookahead (Qureshi & Patt) — the paper's evaluation policy.
    #[default]
    Ucp,
    /// Static equal shares (no monitoring).
    Equal,
    /// Miss-ratio equalization over UMON curves ("communist"; Hsu et al.).
    MissRatio,
    /// Per-partition minimum capacity plus weighted shares of the spare
    /// (LFOC/Memshare-style QoS allocation).
    Qos,
    /// LFOC-style clustering: tenants are bucketed by miss pressure into
    /// a bounded number of clusters, and targets are sized per cluster —
    /// the allocator for large churning populations.
    Clustered,
}

impl PolicyKind {
    /// Every selectable policy, in CLI order.
    pub const ALL: [PolicyKind; 5] = [
        PolicyKind::Ucp,
        PolicyKind::Equal,
        PolicyKind::MissRatio,
        PolicyKind::Qos,
        PolicyKind::Clustered,
    ];

    /// Parses a `--policy` argument (`ucp`, `equal`, `missratio`, `qos`,
    /// `clustered`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "ucp" => Some(Self::Ucp),
            "equal" => Some(Self::Equal),
            "missratio" => Some(Self::MissRatio),
            "qos" => Some(Self::Qos),
            "clustered" => Some(Self::Clustered),
            _ => None,
        }
    }

    /// The CLI/label spelling.
    pub fn label(self) -> &'static str {
        match self {
            Self::Ucp => "ucp",
            Self::Equal => "equal",
            Self::MissRatio => "missratio",
            Self::Qos => "qos",
            Self::Clustered => "clustered",
        }
    }
}

fn rank_label(r: BaselineRank) -> &'static str {
    match r {
        BaselineRank::Lru => "LRU",
        BaselineRank::Srrip => "SRRIP",
        BaselineRank::Drrip => "DRRIP",
        BaselineRank::TaDrrip => "TA-DRRIP",
    }
}

fn array_label(a: ArrayKind) -> String {
    match a {
        ArrayKind::SetAssoc { ways } => format!("SA{ways}"),
        ArrayKind::Z { ways, candidates } => format!("Z{ways}/{candidates}"),
        ArrayKind::Skew { ways } => format!("Skew{ways}"),
        ArrayKind::Random { candidates } => format!("Rand{candidates}"),
    }
}

/// An inconsistent [`SystemConfig`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SysConfigError {
    /// Zero cores.
    NoCores,
    /// L1 lines zero or not divisible by the way count.
    L1Geometry,
    /// L2 lines zero or not divisible by the way count.
    L2Geometry,
    /// Bank count zero, L2 lines not divisible by the bank count, or a
    /// per-bank shard not divisible by the way count.
    BankGeometry,
    /// Zero memory channels.
    NoMemChannels,
    /// Zero per-core instruction quota.
    NoInstructions,
    /// Zero repartitioning interval.
    NoRepartitionInterval,
}

impl std::fmt::Display for SysConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::NoCores => "need at least one core",
            Self::L1Geometry => "bad L1 geometry",
            Self::L2Geometry => "bad L2 geometry",
            Self::BankGeometry => "bad bank geometry",
            Self::NoMemChannels => "need at least one memory channel",
            Self::NoInstructions => "need a nonzero instruction quota",
            Self::NoRepartitionInterval => "need a nonzero repartition interval",
        })
    }
}

impl std::error::Error for SysConfigError {}

/// Machine parameters (Table 2, scaled run lengths).
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// Number of cores (= partitions; one per core).
    pub cores: usize,
    /// Private L1 size in lines (32 KB = 512 lines).
    pub l1_lines: usize,
    /// L1 associativity.
    pub l1_ways: usize,
    /// Shared L2 size in lines.
    pub l2_lines: usize,
    /// Baseline/way-scheme associativity; also the UMON way count.
    pub l2_ways: usize,
    /// Address-interleaved L2 banks. `1` (the default machines) keeps the
    /// monolithic LLC; larger values shard the cache into `banks` equal
    /// slices behind a steering hash (Table 2's "8 MB NUCA, 4 banks"),
    /// each running its own controller.
    pub banks: usize,
    /// Worker threads serving banked batches. `<= 1` serves banks serially
    /// on the calling thread; larger values (meaningful only with
    /// `banks > 1`) spin up a scoped worker pool per batch. Results are
    /// bit-identical either way.
    pub bank_jobs: usize,
    /// Execution engine for banked machines (`banks > 1`):
    /// [`EngineKind::Batched`] (the default) serves driver batches through
    /// the grouped [`BankedLlc`](vantage_partitioning::BankedLlc) path — or
    /// the worker-pool
    /// [`ParallelBankedLlc`](vantage_partitioning::ParallelBankedLlc) when
    /// `bank_jobs > 1` — while [`EngineKind::Pipelined`] routes accesses
    /// through the ring-buffered
    /// [`PipelinedBankedLlc`](vantage_partitioning::PipelinedBankedLlc)
    /// with bank-major drains and epoch barriers. [`EngineKind::Serial`]
    /// builds the same cache as `Batched`; the distinction matters to
    /// drivers (one `access` per request), not to construction. Results
    /// are bit-identical across engines; unbanked machines ignore this.
    pub engine: EngineKind,
    /// L2 hit latency in cycles (L1-to-bank + bank).
    pub l2_latency: u64,
    /// Memory zero-load latency in cycles.
    pub mem_latency: u64,
    /// Independent memory channels.
    pub mem_channels: usize,
    /// Channel occupancy per line transfer, in cycles (bandwidth model).
    pub mem_cycles_per_line: u64,
    /// UCP repartitioning interval in cycles.
    pub repartition_interval: u64,
    /// Per-core instruction quota (IPC is measured over exactly this many).
    pub instructions: u64,
    /// Sampled UMON sets.
    pub umon_sets: usize,
    /// Master seed (hashes, workload draws, PIPP coins).
    pub seed: u64,
    /// The allocation policy driving repartitioning (see [`PolicyKind`]).
    pub policy: PolicyKind,
    /// Debug flag: verify the scheme's accounting invariants (an O(frames)
    /// tag scan) at every repartitioning boundary. A violation is repaired
    /// in place (scrub + warning + telemetry event) unless
    /// [`fail_fast_invariants`](Self::fail_fast_invariants) is set. Off by
    /// default — it is a correctness harness, not a model feature.
    pub check_invariants: bool,
    /// With [`check_invariants`](Self::check_invariants): treat a
    /// violation as a fatal simulation error instead of repairing it.
    pub fail_fast_invariants: bool,
    /// Run a Vantage recovery scrub every this many LLC accesses (see
    /// [`VantageLlc::scrub`](vantage::VantageLlc::scrub)). `None` disables
    /// scrubbing; only meaningful under fault injection.
    pub scrub_period: Option<u64>,
    /// How the LLC resolves cross-partition sharing (see
    /// [`ShareMode`](vantage_cache::ShareMode)). [`ShareMode::Adopt`]
    /// reproduces the historical behavior bit-for-bit; applied to the
    /// scheme right after construction.
    ///
    /// [`ShareMode::Adopt`]: vantage_cache::ShareMode::Adopt
    pub share_mode: ShareMode,
}

impl SystemConfig {
    /// The 4-core machine (§5): 2 MB 16-way L2, 4 GB/s memory.
    ///
    /// Run length and repartitioning interval are scaled down ~20× from the
    /// paper's 200M instructions / 5M cycles so the full 350-mix sweep runs
    /// in minutes; pass larger values to approach paper scale.
    pub fn small_scale() -> Self {
        Self {
            cores: 4,
            l1_lines: 512,
            l1_ways: 4,
            l2_lines: 32 * 1024,
            l2_ways: 16,
            banks: 1,
            bank_jobs: 1,
            engine: EngineKind::default(),
            l2_latency: 12,
            mem_latency: 200,
            mem_channels: 1,
            mem_cycles_per_line: 32, // 64 B / (2 B/cycle) — 4 GB/s at 2 GHz
            repartition_interval: 250_000,
            instructions: 10_000_000,
            umon_sets: 64,
            seed: 0xFEED_F00D,
            policy: PolicyKind::Ucp,
            check_invariants: false,
            fail_fast_invariants: false,
            scrub_period: None,
            share_mode: ShareMode::Adopt,
        }
    }

    /// The 32-core machine (Table 2): 8 MB 64-way L2, 32 GB/s memory.
    pub fn large_scale() -> Self {
        Self {
            cores: 32,
            l1_lines: 512,
            l1_ways: 4,
            l2_lines: 128 * 1024,
            l2_ways: 64,
            banks: 1,
            bank_jobs: 1,
            engine: EngineKind::default(),
            l2_latency: 12,
            mem_latency: 200,
            mem_channels: 4,
            mem_cycles_per_line: 16, // 64 B / (4 B/cycle/channel) — 32 GB/s
            repartition_interval: 250_000,
            instructions: 2_000_000,
            umon_sets: 64,
            seed: 0xFEED_F00D,
            policy: PolicyKind::Ucp,
            check_invariants: false,
            fail_fast_invariants: false,
            scrub_period: None,
            share_mode: ShareMode::Adopt,
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message on inconsistent parameters.
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}");
        }
    }

    /// [`Self::validate`] with a typed error instead of a panic.
    ///
    /// # Errors
    ///
    /// Returns a [`SysConfigError`] identifying the first inconsistency.
    pub fn try_validate(&self) -> Result<(), SysConfigError> {
        if self.cores == 0 {
            return Err(SysConfigError::NoCores);
        }
        if self.l1_lines == 0 || self.l1_ways == 0 || !self.l1_lines.is_multiple_of(self.l1_ways) {
            return Err(SysConfigError::L1Geometry);
        }
        if self.l2_lines == 0 || self.l2_ways == 0 || !self.l2_lines.is_multiple_of(self.l2_ways) {
            return Err(SysConfigError::L2Geometry);
        }
        if self.banks == 0
            || !self.l2_lines.is_multiple_of(self.banks)
            || !(self.l2_lines / self.banks).is_multiple_of(self.l2_ways)
        {
            return Err(SysConfigError::BankGeometry);
        }
        if self.mem_channels == 0 {
            return Err(SysConfigError::NoMemChannels);
        }
        if self.instructions == 0 {
            return Err(SysConfigError::NoInstructions);
        }
        if self.repartition_interval == 0 {
            return Err(SysConfigError::NoRepartitionInterval);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_machines_are_consistent() {
        SystemConfig::small_scale().validate();
        SystemConfig::large_scale().validate();
        let small = SystemConfig::small_scale();
        assert_eq!(small.l2_lines * 64, 2 * 1024 * 1024, "2 MB L2");
        let large = SystemConfig::large_scale();
        assert_eq!(large.l2_lines * 64, 8 * 1024 * 1024, "8 MB L2");
        assert_eq!(large.cores, 32);
    }

    #[test]
    fn try_validate_identifies_the_broken_field() {
        let base = SystemConfig::small_scale();
        assert_eq!(base.try_validate(), Ok(()));
        type Case = (fn(&mut SystemConfig), SysConfigError);
        let cases: [Case; 7] = [
            (|s| s.cores = 0, SysConfigError::NoCores),
            (|s| s.l1_lines = 7, SysConfigError::L1Geometry),
            (|s| s.l2_ways = 0, SysConfigError::L2Geometry),
            (|s| s.banks = 0, SysConfigError::BankGeometry),
            // 32K lines over 3 banks does not divide evenly.
            (|s| s.banks = 3, SysConfigError::BankGeometry),
            (|s| s.mem_channels = 0, SysConfigError::NoMemChannels),
            (|s| s.instructions = 0, SysConfigError::NoInstructions),
        ];
        for (break_it, want) in cases {
            let mut sys = base.clone();
            break_it(&mut sys);
            assert_eq!(sys.try_validate(), Err(want));
        }
    }

    #[test]
    #[should_panic(expected = "need a nonzero repartition interval")]
    fn validate_panics_with_the_legacy_message() {
        let mut sys = SystemConfig::small_scale();
        sys.repartition_interval = 0;
        sys.validate();
    }

    #[test]
    fn labels_are_paper_style() {
        assert_eq!(SchemeKind::vantage_paper().label(), "Vantage-Z4/52");
        assert_eq!(
            SchemeKind::Baseline {
                array: ArrayKind::SetAssoc { ways: 16 },
                rank: BaselineRank::Lru
            }
            .label(),
            "LRU-SA16"
        );
        assert_eq!(SchemeKind::WayPart.label(), "WayPart");
        assert_eq!(SchemeKind::Pipp.label(), "PIPP");
    }
}
