//! Multiprogrammed-workload metrics.
//!
//! The paper reports aggregate throughput (`Σ IPC`) and notes that weighted
//! speedup and the harmonic mean of weighted speedups "do not offer
//! additional insights" for its UCP-driven results (§5). These helpers
//! compute all three so downstream users can study fairness-oriented
//! allocation policies too.

/// Aggregate throughput: `Σ IPC_i` (the paper's headline metric).
///
/// # Example
///
/// ```
/// use vantage_sim::metrics::throughput;
///
/// assert_eq!(throughput(&[0.5, 0.25]), 0.75);
/// ```
pub fn throughput(ipc: &[f64]) -> f64 {
    ipc.iter().sum()
}

/// Weighted speedup: `Σ IPC_shared,i / IPC_alone,i` (Snavely & Tullsen).
/// Equals the core count when sharing is free.
///
/// # Panics
///
/// Panics if the slices differ in length or any solo IPC is non-positive.
pub fn weighted_speedup(shared: &[f64], alone: &[f64]) -> f64 {
    assert_eq!(shared.len(), alone.len(), "one solo IPC per core");
    assert!(alone.iter().all(|&a| a > 0.0), "solo IPCs must be positive");
    shared.iter().zip(alone).map(|(s, a)| s / a).sum()
}

/// Harmonic mean of weighted speedups (Luo et al.) — balances throughput
/// and fairness: a single starved application collapses it.
///
/// # Panics
///
/// Panics if the slices differ in length, any solo IPC is non-positive, or
/// any shared IPC is zero (the harmonic mean is undefined).
pub fn hmean_weighted_speedup(shared: &[f64], alone: &[f64]) -> f64 {
    assert_eq!(shared.len(), alone.len(), "one solo IPC per core");
    assert!(alone.iter().all(|&a| a > 0.0), "solo IPCs must be positive");
    assert!(
        shared.iter().all(|&s| s > 0.0),
        "shared IPCs must be positive"
    );
    let n = shared.len() as f64;
    n / shared.iter().zip(alone).map(|(s, a)| a / s).sum::<f64>()
}

/// Maximum slowdown: `max_i IPC_alone,i / IPC_shared,i` — the QoS metric
/// (1.0 = nobody slowed down).
///
/// # Panics
///
/// Panics if the slices differ in length or any IPC is non-positive.
pub fn max_slowdown(shared: &[f64], alone: &[f64]) -> f64 {
    assert_eq!(shared.len(), alone.len(), "one solo IPC per core");
    assert!(alone.iter().all(|&a| a > 0.0) && shared.iter().all(|&s| s > 0.0));
    shared
        .iter()
        .zip(alone)
        .map(|(s, a)| a / s)
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_sharing_is_the_upper_bound() {
        let alone = [0.8, 0.6, 0.4];
        let ws = weighted_speedup(&alone, &alone);
        assert!((ws - 3.0).abs() < 1e-12);
        assert!((hmean_weighted_speedup(&alone, &alone) - 1.0).abs() < 1e-12);
        assert!((max_slowdown(&alone, &alone) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn starvation_collapses_hmean_but_not_throughput() {
        let alone = [0.8, 0.8];
        let fair = [0.4, 0.4];
        let unfair = [0.79, 0.01];
        // Same-ish throughput...
        assert!((throughput(&fair) - throughput(&unfair)).abs() < 0.01);
        // ...but the harmonic mean exposes the starvation.
        assert!(
            hmean_weighted_speedup(&fair, &alone) > 10.0 * hmean_weighted_speedup(&unfair, &alone)
        );
        assert!(max_slowdown(&unfair, &alone) > 50.0);
    }

    #[test]
    fn weighted_speedup_normalizes_per_app() {
        // A slow app running at its solo speed contributes exactly 1.
        let shared = [0.1, 0.9];
        let alone = [0.1, 0.9];
        assert!((weighted_speedup(&shared, &alone) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "solo IPC")]
    fn mismatched_lengths_rejected() {
        weighted_speedup(&[1.0], &[1.0, 1.0]);
    }
}
