//! Epoch scheduling: the repartitioning controller that sits between the
//! simulation loop and the allocation policy.
//!
//! [`EpochController`] owns everything that used to be special-cased
//! inside `CmpSim`: the [`AllocationPolicy`] instance (built from
//! [`SystemConfig::policy`]), the optional Vantage-DRRIP RRIP monitors,
//! and the invariant check/repair pass at each epoch boundary. The
//! simulation loop only calls [`EpochController::observe`] per L2 access
//! and [`EpochController::run_epoch`] when the epoch clock expires.
//!
//! The controller also hosts *guarded live reconfiguration*
//! ([`EpochController::reconfigure`]): a policy hot-swap or QoS-contract
//! change is applied transactionally — the controller snapshots its own
//! state first, runs a trial reallocation under the new policy, and if
//! the post-swap invariants fail it rolls back to the snapshot and
//! counts the recovery instead of leaving a half-configured controller.

use vantage_cache::replacement::rrip::BasePolicy;
use vantage_cache::LineAddr;
use vantage_partitioning::InvariantViolation;
use vantage_snapshot::{Decoder, Encoder, Snapshot};
use vantage_ucp::{
    AllocationPolicy, ClusteredPolicy, EqualShares, MissRatioEqualizer, PolicyInput, QosGuarantee,
    RripUmon, UcpGranularity, UcpPolicy,
};

use crate::config::{PolicyKind, SchemeKind, SystemConfig};
use crate::scheme::Scheme;

/// A fatal simulation error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// An accounting-invariant violation at a repartitioning boundary,
    /// with fail-fast checking enabled
    /// ([`SystemConfig::fail_fast_invariants`]).
    Invariant(InvariantViolation),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Invariant(e) => {
                write!(f, "invariant check at repartitioning failed: {e}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// The live allocation-policy selection, including any hot-swapped QoS
/// contract. This is what a checkpoint records: unlike
/// [`SystemConfig::policy`] it survives [`EpochController::reconfigure`],
/// so a resumed run rebuilds the policy that was actually active.
#[derive(Clone, Debug, PartialEq)]
pub enum ActivePolicy {
    /// UCP/Lookahead.
    Ucp,
    /// Static equal shares.
    Equal,
    /// Miss-ratio equalization.
    MissRatio,
    /// A QoS contract: guaranteed lines plus spare-capacity weights.
    Qos {
        /// Guaranteed minimum lines per partition.
        floors: Vec<u64>,
        /// Spare-capacity weights per partition.
        weights: Vec<f64>,
    },
    /// LFOC-style clustered allocation for churning populations.
    Clustered {
        /// Upper bound on distinct enforcement clusters.
        max_clusters: usize,
        /// Guaranteed lines for every live tenant.
        min_lines: u64,
    },
}

impl ActivePolicy {
    /// The [`PolicyKind`] this selection instantiates (contract details,
    /// if any, are dropped).
    pub fn kind(&self) -> PolicyKind {
        match self {
            Self::Ucp => PolicyKind::Ucp,
            Self::Equal => PolicyKind::Equal,
            Self::MissRatio => PolicyKind::MissRatio,
            Self::Qos { .. } => PolicyKind::Qos,
            Self::Clustered { .. } => PolicyKind::Clustered,
        }
    }
}

/// The default [`ActivePolicy`] for `policy` on machine `sys` (the QoS
/// default guarantees each partition 1/8 of its even share, equal
/// weights for the spare).
fn default_active(sys: &SystemConfig, policy: PolicyKind) -> ActivePolicy {
    match policy {
        PolicyKind::Ucp => ActivePolicy::Ucp,
        PolicyKind::Equal => ActivePolicy::Equal,
        PolicyKind::MissRatio => ActivePolicy::MissRatio,
        PolicyKind::Qos => {
            let min = (sys.l2_lines / (8 * sys.cores)) as u64;
            ActivePolicy::Qos {
                floors: vec![min; sys.cores],
                weights: vec![1.0; sys.cores],
            }
        }
        PolicyKind::Clustered => ActivePolicy::Clustered {
            max_clusters: 8,
            min_lines: (sys.l2_lines / (8 * sys.cores)) as u64,
        },
    }
}

/// Instantiates allocation policy `active` for machine `sys` under
/// scheme `kind`. Way-granularity schemes get way-granularity UMONs;
/// Vantage gets the paper's 256-block interpolated curves (§5).
fn build_policy(
    sys: &SystemConfig,
    kind: &SchemeKind,
    active: &ActivePolicy,
) -> Box<dyn AllocationPolicy> {
    let granularity = match kind {
        SchemeKind::Vantage { .. } => UcpGranularity::Fine { blocks: 256 },
        SchemeKind::WayPart | SchemeKind::Pipp | SchemeKind::Baseline { .. } => {
            UcpGranularity::Ways(sys.l2_ways as u32)
        }
    };
    match active {
        ActivePolicy::Ucp => Box::new(UcpPolicy::new(
            sys.cores,
            sys.l2_ways,
            sys.umon_sets,
            (sys.l2_lines / sys.l2_ways) as u32,
            sys.l2_lines as u64,
            granularity,
            sys.seed ^ 0x0C0,
        )),
        ActivePolicy::Equal => Box::new(EqualShares::new()),
        ActivePolicy::MissRatio => Box::new(MissRatioEqualizer::new(
            sys.cores,
            sys.l2_ways,
            sys.umon_sets,
            (sys.l2_lines / sys.l2_ways) as u32,
            sys.l2_lines as u64,
            granularity,
            sys.seed ^ 0x0C0,
        )),
        ActivePolicy::Qos { floors, weights } => Box::new(
            QosGuarantee::try_new(floors.clone(), weights.clone()).expect("valid QoS shape"),
        ),
        ActivePolicy::Clustered {
            max_clusters,
            min_lines,
        } => Box::new(
            ClusteredPolicy::try_new(*max_clusters, *min_lines).expect("valid cluster config"),
        ),
    }
}

/// A live-reconfiguration request (see [`EpochController::reconfigure`]).
#[derive(Clone, Debug)]
pub enum Reconfig {
    /// Hot-swap the allocation policy to the named kind's default
    /// configuration.
    Policy(PolicyKind),
    /// Install a QoS contract: per-partition guaranteed lines plus
    /// spare-capacity weights.
    QosContract {
        /// Guaranteed minimum lines per partition.
        floors: Vec<u64>,
        /// Spare-capacity weights per partition.
        weights: Vec<f64>,
    },
}

/// Why a live reconfiguration did not take effect.
#[derive(Clone, Debug, PartialEq)]
pub enum ReconfigError {
    /// The scheme is unmanaged (a baseline): there is no policy to swap.
    Unmanaged,
    /// The request is structurally invalid (shape or weight errors); it
    /// was rejected before any state changed.
    BadRequest(String),
    /// The swap was applied but its post-swap invariants failed; the
    /// controller rolled back to its pre-swap state and counted the
    /// recovery (see [`EpochController::reconfig_rollbacks`]).
    RolledBack(String),
}

impl std::fmt::Display for ReconfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Unmanaged => f.write_str("unmanaged scheme has no allocation policy to swap"),
            Self::BadRequest(why) => write!(f, "invalid reconfiguration request: {why}"),
            Self::RolledBack(why) => {
                write!(
                    f,
                    "reconfiguration failed post-swap invariants, rolled back: {why}"
                )
            }
        }
    }
}

impl std::error::Error for ReconfigError {}

/// The repartitioning-epoch controller; see the [module docs](self).
pub struct EpochController {
    sys: SystemConfig,
    kind: SchemeKind,
    interval: u64,
    next: u64,
    active: Option<ActivePolicy>,
    policy: Option<Box<dyn AllocationPolicy>>,
    wants_stream: bool,
    rrip_umons: Option<Vec<RripUmon>>,
    check_invariants: bool,
    fail_fast: bool,
    last_targets: Vec<u64>,
    recoveries: u64,
    reconfig_rollbacks: u64,
}

impl EpochController {
    /// Builds the controller for machine `sys` driving `scheme`. Baseline
    /// (unmanaged) schemes get no policy; Vantage-DRRIP kinds additionally
    /// get one RRIP monitor per core.
    pub fn new(sys: &SystemConfig, kind: &SchemeKind, scheme: &Scheme) -> Self {
        let active = scheme.uses_ucp().then(|| default_active(sys, sys.policy));
        let policy = active.as_ref().map(|a| build_policy(sys, kind, a));
        let wants_stream = policy
            .as_deref()
            .is_some_and(AllocationPolicy::wants_access_stream);
        let rrip_umons = match kind {
            SchemeKind::Vantage { drrip: true, .. } => Some(
                (0..sys.cores)
                    .map(|c| {
                        RripUmon::new(
                            sys.l2_ways,
                            sys.umon_sets,
                            (sys.l2_lines / sys.l2_ways) as u32,
                            3,
                            sys.seed ^ (c as u64 + 0xD00),
                        )
                    })
                    .collect(),
            ),
            _ => None,
        };
        Self {
            interval: sys.repartition_interval,
            next: sys.repartition_interval,
            active,
            policy,
            wants_stream,
            rrip_umons,
            check_invariants: sys.check_invariants,
            fail_fast: sys.fail_fast_invariants,
            last_targets: Vec::new(),
            recoveries: 0,
            reconfig_rollbacks: 0,
            sys: sys.clone(),
            kind: kind.clone(),
        }
    }

    /// The active policy's name, or `None` for unmanaged schemes.
    pub fn policy_name(&self) -> Option<&'static str> {
        self.policy.as_deref().map(AllocationPolicy::name)
    }

    /// The global time of the next epoch boundary.
    pub fn next_at(&self) -> u64 {
        self.next
    }

    /// The targets installed at the last epoch (empty before the first).
    pub fn targets(&self) -> &[u64] {
        &self.last_targets
    }

    /// Invariant violations absorbed by repair instead of aborting.
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// Reconfiguration attempts that failed post-swap invariants and were
    /// rolled back.
    pub fn reconfig_rollbacks(&self) -> u64 {
        self.reconfig_rollbacks
    }

    /// The live policy selection (`None` for unmanaged schemes). Differs
    /// from [`SystemConfig::policy`] after a successful
    /// [`reconfigure`](Self::reconfigure).
    pub fn active_policy(&self) -> Option<&ActivePolicy> {
        self.active.as_ref()
    }

    /// Applies a live reconfiguration transactionally.
    ///
    /// The controller snapshots its own state, installs the new policy,
    /// and runs a trial reallocation over the scheme's current
    /// observations. The post-swap invariants — one target per partition,
    /// targets tiling the capacity exactly, and (for QoS contracts) every
    /// target honoring its guaranteed floor — must hold; on success the
    /// trial targets are installed on the scheme and the swap is live. On
    /// failure the controller restores the pre-swap snapshot, leaves the
    /// scheme untouched, and counts the recovery in
    /// [`reconfig_rollbacks`](Self::reconfig_rollbacks).
    ///
    /// # Errors
    ///
    /// [`ReconfigError::Unmanaged`] on baseline schemes,
    /// [`ReconfigError::BadRequest`] for structurally invalid requests
    /// (nothing changed), and [`ReconfigError::RolledBack`] when the
    /// post-swap invariants failed (state restored, recovery counted).
    pub fn reconfigure(
        &mut self,
        req: &Reconfig,
        scheme: &mut Scheme,
    ) -> Result<(), ReconfigError> {
        if self.policy.is_none() {
            return Err(ReconfigError::Unmanaged);
        }
        let new_active = match req {
            Reconfig::Policy(kind) => default_active(&self.sys, *kind),
            Reconfig::QosContract { floors, weights } => {
                if floors.len() != self.sys.cores {
                    return Err(ReconfigError::BadRequest(format!(
                        "{} floors for {} partitions",
                        floors.len(),
                        self.sys.cores
                    )));
                }
                // Surface shape/weight errors before touching anything.
                QosGuarantee::try_new(floors.clone(), weights.clone())
                    .map_err(|e| ReconfigError::BadRequest(e.to_string()))?;
                ActivePolicy::Qos {
                    floors: floors.clone(),
                    weights: weights.clone(),
                }
            }
        };

        // Transaction begins: snapshot the controller for rollback.
        let mut enc = Encoder::new();
        self.save_state(&mut enc);
        let saved = enc.into_bytes();

        self.policy = Some(build_policy(&self.sys, &self.kind, &new_active));
        self.active = Some(new_active.clone());
        self.wants_stream = self
            .policy
            .as_deref()
            .is_some_and(AllocationPolicy::wants_access_stream);

        match self.trial_reallocate(scheme, &new_active) {
            Ok(targets) => {
                scheme.llc_mut().set_targets(&targets);
                self.last_targets = targets;
                Ok(())
            }
            Err(why) => {
                let mut dec = Decoder::new(&saved, "reconfigure rollback");
                self.load_state(&mut dec)
                    .expect("pre-swap controller snapshot restores cleanly");
                self.reconfig_rollbacks += 1;
                Err(ReconfigError::RolledBack(why))
            }
        }
    }

    /// Runs the freshly installed policy once over current observations
    /// and checks the post-swap invariants, returning the trial targets.
    fn trial_reallocate(
        &mut self,
        scheme: &mut Scheme,
        active: &ActivePolicy,
    ) -> Result<Vec<u64>, String> {
        let capacity = scheme.llc().capacity() as u64;
        let obs = scheme.llc_mut().observations();
        let input = PolicyInput {
            capacity,
            actual: &obs.actual,
            hits: &obs.hits,
            misses: &obs.misses,
            churn: &obs.churn,
            insertions: &obs.insertions,
            shared_hits: &obs.shared_hits,
            ownership_transfers: &obs.ownership_transfers,
            live: &obs.live,
            arrived: &obs.arrived,
            departed: &obs.departed,
        };
        let nslots = input.num_partitions();
        let nlive = input.live_partitions();
        let policy = self.policy.as_mut().expect("swap installed a policy");
        let targets = policy.reallocate(&input);
        if targets.len() != nslots {
            return Err(format!(
                "policy produced {} targets for {} partition slots",
                targets.len(),
                nslots
            ));
        }
        let total: u64 = targets.iter().sum();
        // With live tenants the targets must tile the capacity exactly;
        // with none, everything stays unmanaged.
        let expected = if nlive > 0 { capacity } else { 0 };
        if total != expected {
            return Err(format!(
                "targets sum to {total} but the cache holds {capacity} lines \
                 ({nlive} live partitions)"
            ));
        }
        if let ActivePolicy::Qos { floors, .. } = active {
            for (p, (&t, &floor)) in targets.iter().zip(floors).enumerate() {
                if t < floor && obs.live.get(p).copied().unwrap_or(true) {
                    return Err(format!(
                        "partition {p} target {t} is below its guaranteed floor {floor}"
                    ));
                }
            }
        }
        Ok(targets)
    }

    /// Feeds one L2 access to whatever monitors the configuration carries
    /// (the policy's access stream, the DRRIP monitors, or neither).
    #[inline]
    pub fn observe(&mut self, part: usize, addr: LineAddr) {
        if self.wants_stream {
            if let Some(p) = &mut self.policy {
                p.observe(part, addr);
            }
        }
        if let Some(umons) = &mut self.rrip_umons {
            umons[part].access(addr);
        }
    }

    /// Runs one epoch boundary: invariant audit (repairing or failing
    /// fast on a violation), target reallocation through the policy, and
    /// DRRIP policy selection; then advances the epoch clock.
    ///
    /// # Errors
    ///
    /// [`SimError::Invariant`] when a violation is found and
    /// [`SystemConfig::fail_fast_invariants`] is set; with fail-fast off
    /// the violation is scrubbed in place (counted in
    /// [`recoveries`](Self::recoveries)) and the epoch proceeds.
    pub fn run_epoch(&mut self, scheme: &mut Scheme) -> Result<(), SimError> {
        // The epoch boundary is the pipelined engine's one true barrier:
        // drain queued accesses so the policy observes everything issued
        // this epoch and the repartition applies to a quiesced cache.
        // (Checkpoints cut here too, which is what keeps them engine-
        // independent.) A no-op for the other engines.
        scheme.epoch_barrier();
        if self.check_invariants {
            if let Some(inv) = scheme.has_invariants() {
                if let Err(e) = inv.check_invariants() {
                    if self.fail_fast {
                        return Err(SimError::Invariant(e));
                    }
                    let repairs = scheme.has_invariants_mut().expect("checked above").repair();
                    eprintln!(
                        "warning: repartitioning invariant violation repaired \
                         ({repairs} corrections): {e}"
                    );
                    self.recoveries += 1;
                }
            }
        }
        if let Some(policy) = &mut self.policy {
            let capacity = scheme.llc().capacity() as u64;
            let obs = scheme.llc_mut().observations();
            let input = PolicyInput {
                capacity,
                actual: &obs.actual,
                hits: &obs.hits,
                misses: &obs.misses,
                churn: &obs.churn,
                insertions: &obs.insertions,
                shared_hits: &obs.shared_hits,
                ownership_transfers: &obs.ownership_transfers,
                live: &obs.live,
                arrived: &obs.arrived,
                departed: &obs.departed,
            };
            let targets = policy.reallocate(&input);
            scheme.llc_mut().set_targets(&targets);
            self.last_targets = targets;
        }
        if let Some(umons) = &mut self.rrip_umons {
            let policies: Vec<BasePolicy> = umons.iter().map(RripUmon::best_policy).collect();
            for u in umons.iter_mut() {
                u.decay();
            }
            if let Some(pp) = scheme.has_partition_policy() {
                for (p, pol) in policies.into_iter().enumerate() {
                    pp.set_partition_policy(p, pol);
                }
            }
        }
        self.next += self.interval;
        Ok(())
    }
}

impl Snapshot for EpochController {
    fn save_state(&self, enc: &mut Encoder) {
        enc.put_u64(self.next);
        // The active-policy descriptor, so a resumed run rebuilds a
        // hot-swapped policy rather than the config default.
        match &self.active {
            None => enc.put_u8(0),
            Some(ActivePolicy::Ucp) => enc.put_u8(1),
            Some(ActivePolicy::Equal) => enc.put_u8(2),
            Some(ActivePolicy::MissRatio) => enc.put_u8(3),
            Some(ActivePolicy::Qos { floors, weights }) => {
                enc.put_u8(4);
                enc.put_u64_slice(floors);
                let bits: Vec<u64> = weights.iter().map(|w| w.to_bits()).collect();
                enc.put_u64_slice(&bits);
            }
            Some(ActivePolicy::Clustered {
                max_clusters,
                min_lines,
            }) => {
                enc.put_u8(5);
                enc.put_u64(*max_clusters as u64);
                enc.put_u64(*min_lines);
            }
        }
        if let Some(p) = self.policy.as_deref() {
            p.save_state(enc);
        }
        enc.put_bool(self.rrip_umons.is_some());
        if let Some(umons) = &self.rrip_umons {
            enc.put_u64(umons.len() as u64);
            for u in umons {
                u.save_state(enc);
            }
        }
        enc.put_u64_slice(&self.last_targets);
        enc.put_u64(self.recoveries);
        enc.put_u64(self.reconfig_rollbacks);
    }

    fn load_state(&mut self, dec: &mut Decoder<'_>) -> vantage_snapshot::Result<()> {
        let next = dec.take_u64()?;
        if next == 0 || !next.is_multiple_of(self.interval) {
            return Err(dec.invalid("epoch clock out of phase with the interval"));
        }
        let active = match dec.take_u8()? {
            0 => None,
            1 => Some(ActivePolicy::Ucp),
            2 => Some(ActivePolicy::Equal),
            3 => Some(ActivePolicy::MissRatio),
            4 => {
                let floors = dec.take_u64_vec()?;
                let weights: Vec<f64> = dec
                    .take_u64_vec()?
                    .into_iter()
                    .map(f64::from_bits)
                    .collect();
                if floors.len() != self.sys.cores {
                    return Err(dec.mismatch("QoS floor count differs from partition count"));
                }
                QosGuarantee::try_new(floors.clone(), weights.clone())
                    .map_err(|e| dec.invalid(&format!("bad QoS contract: {e}")))?;
                Some(ActivePolicy::Qos { floors, weights })
            }
            5 => {
                let max_clusters = dec.take_u64()? as usize;
                let min_lines = dec.take_u64()?;
                if max_clusters == 0 {
                    return Err(dec.invalid("clustered policy with zero clusters"));
                }
                Some(ActivePolicy::Clustered {
                    max_clusters,
                    min_lines,
                })
            }
            t => return Err(dec.invalid(&format!("unknown policy tag {t}"))),
        };
        if active.is_some() != self.policy.is_some() {
            return Err(dec.mismatch("managed/unmanaged scheme disagreement"));
        }
        // Always rebuild the policy from the descriptor (cheap — fresh
        // monitors), then restore its state; this also covers resuming
        // onto a policy hot-swapped away from the config default.
        let mut policy = active
            .as_ref()
            .map(|a| build_policy(&self.sys, &self.kind, a));
        if let Some(p) = policy.as_deref_mut() {
            p.load_state(dec)?;
        }
        if dec.take_bool()? != self.rrip_umons.is_some() {
            return Err(dec.mismatch("DRRIP monitor presence differs"));
        }
        if let Some(umons) = &mut self.rrip_umons {
            if dec.take_u64()? != umons.len() as u64 {
                return Err(dec.mismatch("DRRIP monitor count differs"));
            }
            for u in umons.iter_mut() {
                u.load_state(dec)?;
            }
        }
        let last_targets = dec.take_u64_vec()?;
        if !last_targets.is_empty() {
            // Under service-mode churn the slot table can outgrow the
            // core count, and an all-dead population legitimately sums
            // to zero — so bound rather than pin both checks.
            if last_targets.len() < self.sys.cores {
                return Err(dec.mismatch("fewer targets than partition slots"));
            }
            if last_targets.iter().sum::<u64>() > self.sys.l2_lines as u64 {
                return Err(dec.invalid("targets overcommit the cache"));
            }
        }
        let recoveries = dec.take_u64()?;
        let reconfig_rollbacks = dec.take_u64()?;
        self.next = next;
        self.active = active;
        self.policy = policy;
        self.wants_stream = self
            .policy
            .as_deref()
            .is_some_and(AllocationPolicy::wants_access_stream);
        self.last_targets = last_targets;
        self.recoveries = recoveries;
        self.reconfig_rollbacks = reconfig_rollbacks;
        Ok(())
    }
}
