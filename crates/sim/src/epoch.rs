//! Epoch scheduling: the repartitioning controller that sits between the
//! simulation loop and the allocation policy.
//!
//! [`EpochController`] owns everything that used to be special-cased
//! inside `CmpSim`: the [`AllocationPolicy`] instance (built from
//! [`SystemConfig::policy`]), the optional Vantage-DRRIP RRIP monitors,
//! and the invariant check/repair pass at each epoch boundary. The
//! simulation loop only calls [`EpochController::observe`] per L2 access
//! and [`EpochController::run_epoch`] when the epoch clock expires.

use vantage_cache::replacement::rrip::BasePolicy;
use vantage_cache::LineAddr;
use vantage_partitioning::InvariantViolation;
use vantage_ucp::{
    AllocationPolicy, EqualShares, MissRatioEqualizer, PolicyInput, QosGuarantee, RripUmon,
    UcpGranularity, UcpPolicy,
};

use crate::config::{PolicyKind, SchemeKind, SystemConfig};
use crate::scheme::Scheme;

/// A fatal simulation error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// An accounting-invariant violation at a repartitioning boundary,
    /// with fail-fast checking enabled
    /// ([`SystemConfig::fail_fast_invariants`]).
    Invariant(InvariantViolation),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Invariant(e) => {
                write!(f, "invariant check at repartitioning failed: {e}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Instantiates the configured allocation policy for machine `sys` under
/// scheme `kind`. Way-granularity schemes get way-granularity UMONs;
/// Vantage gets the paper's 256-block interpolated curves (§5).
fn build_policy(sys: &SystemConfig, kind: &SchemeKind) -> Box<dyn AllocationPolicy> {
    let granularity = match kind {
        SchemeKind::Vantage { .. } => UcpGranularity::Fine { blocks: 256 },
        SchemeKind::WayPart | SchemeKind::Pipp | SchemeKind::Baseline { .. } => {
            UcpGranularity::Ways(sys.l2_ways as u32)
        }
    };
    match sys.policy {
        PolicyKind::Ucp => Box::new(UcpPolicy::new(
            sys.cores,
            sys.l2_ways,
            sys.umon_sets,
            (sys.l2_lines / sys.l2_ways) as u32,
            sys.l2_lines as u64,
            granularity,
            sys.seed ^ 0x0C0,
        )),
        PolicyKind::Equal => Box::new(EqualShares::new()),
        PolicyKind::MissRatio => Box::new(MissRatioEqualizer::new(
            sys.cores,
            sys.l2_ways,
            sys.umon_sets,
            (sys.l2_lines / sys.l2_ways) as u32,
            sys.l2_lines as u64,
            granularity,
            sys.seed ^ 0x0C0,
        )),
        PolicyKind::Qos => {
            // Default QoS contract: every partition is guaranteed 1/8 of
            // its even share, equal weights for the spare. Callers wanting
            // real tenant SLAs construct QosGuarantee directly.
            let min = (sys.l2_lines / (8 * sys.cores)) as u64;
            Box::new(QosGuarantee::new(
                vec![min; sys.cores],
                vec![1.0; sys.cores],
            ))
        }
    }
}

/// The repartitioning-epoch controller; see the [module docs](self).
pub struct EpochController {
    interval: u64,
    next: u64,
    policy: Option<Box<dyn AllocationPolicy>>,
    wants_stream: bool,
    rrip_umons: Option<Vec<RripUmon>>,
    check_invariants: bool,
    fail_fast: bool,
    last_targets: Vec<u64>,
    recoveries: u64,
}

impl EpochController {
    /// Builds the controller for machine `sys` driving `scheme`. Baseline
    /// (unmanaged) schemes get no policy; Vantage-DRRIP kinds additionally
    /// get one RRIP monitor per core.
    pub fn new(sys: &SystemConfig, kind: &SchemeKind, scheme: &Scheme) -> Self {
        let policy = scheme.uses_ucp().then(|| build_policy(sys, kind));
        let wants_stream = policy
            .as_deref()
            .is_some_and(AllocationPolicy::wants_access_stream);
        let rrip_umons = match kind {
            SchemeKind::Vantage { drrip: true, .. } => Some(
                (0..sys.cores)
                    .map(|c| {
                        RripUmon::new(
                            sys.l2_ways,
                            sys.umon_sets,
                            (sys.l2_lines / sys.l2_ways) as u32,
                            3,
                            sys.seed ^ (c as u64 + 0xD00),
                        )
                    })
                    .collect(),
            ),
            _ => None,
        };
        Self {
            interval: sys.repartition_interval,
            next: sys.repartition_interval,
            policy,
            wants_stream,
            rrip_umons,
            check_invariants: sys.check_invariants,
            fail_fast: sys.fail_fast_invariants,
            last_targets: Vec::new(),
            recoveries: 0,
        }
    }

    /// The active policy's name, or `None` for unmanaged schemes.
    pub fn policy_name(&self) -> Option<&'static str> {
        self.policy.as_deref().map(AllocationPolicy::name)
    }

    /// The global time of the next epoch boundary.
    pub fn next_at(&self) -> u64 {
        self.next
    }

    /// The targets installed at the last epoch (empty before the first).
    pub fn targets(&self) -> &[u64] {
        &self.last_targets
    }

    /// Invariant violations absorbed by repair instead of aborting.
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// Feeds one L2 access to whatever monitors the configuration carries
    /// (the policy's access stream, the DRRIP monitors, or neither).
    #[inline]
    pub fn observe(&mut self, part: usize, addr: LineAddr) {
        if self.wants_stream {
            if let Some(p) = &mut self.policy {
                p.observe(part, addr);
            }
        }
        if let Some(umons) = &mut self.rrip_umons {
            umons[part].access(addr);
        }
    }

    /// Runs one epoch boundary: invariant audit (repairing or failing
    /// fast on a violation), target reallocation through the policy, and
    /// DRRIP policy selection; then advances the epoch clock.
    ///
    /// # Errors
    ///
    /// [`SimError::Invariant`] when a violation is found and
    /// [`SystemConfig::fail_fast_invariants`] is set; with fail-fast off
    /// the violation is scrubbed in place (counted in
    /// [`recoveries`](Self::recoveries)) and the epoch proceeds.
    pub fn run_epoch(&mut self, scheme: &mut Scheme) -> Result<(), SimError> {
        if self.check_invariants {
            if let Some(inv) = scheme.has_invariants() {
                if let Err(e) = inv.check_invariants() {
                    if self.fail_fast {
                        return Err(SimError::Invariant(e));
                    }
                    let repairs = scheme.has_invariants_mut().expect("checked above").repair();
                    eprintln!(
                        "warning: repartitioning invariant violation repaired \
                         ({repairs} corrections): {e}"
                    );
                    self.recoveries += 1;
                }
            }
        }
        if let Some(policy) = &mut self.policy {
            let capacity = scheme.llc().capacity() as u64;
            let obs = scheme.llc_mut().observations();
            let input = PolicyInput {
                capacity,
                actual: &obs.actual,
                hits: &obs.hits,
                misses: &obs.misses,
                churn: &obs.churn,
                insertions: &obs.insertions,
            };
            let targets = policy.reallocate(&input);
            scheme.llc_mut().set_targets(&targets);
            self.last_targets = targets;
        }
        if let Some(umons) = &mut self.rrip_umons {
            let policies: Vec<BasePolicy> = umons.iter().map(RripUmon::best_policy).collect();
            for u in umons.iter_mut() {
                u.decay();
            }
            if let Some(pp) = scheme.has_partition_policy() {
                for (p, pol) in policies.into_iter().enumerate() {
                    pp.set_partition_policy(p, pol);
                }
            }
        }
        self.next += self.interval;
        Ok(())
    }
}
