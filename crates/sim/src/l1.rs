//! A minimal private L1 cache: set-associative, true LRU, modulo-indexed.
//!
//! The L1s exist to filter the core's access stream before the shared L2,
//! as in the paper's system (32 KB, 4-way, 1-cycle). They are not
//! partitioned and need no replacement sophistication.

use vantage_cache::LineAddr;

/// A private L1 filter cache.
///
/// # Example
///
/// ```
/// use vantage_sim::L1;
///
/// let mut l1 = L1::new(512, 4);
/// assert!(!l1.access(7.into()));
/// assert!(l1.access(7.into()));
/// ```
#[derive(Clone, Debug)]
pub struct L1 {
    lines: Vec<Option<LineAddr>>,
    last: Vec<u64>,
    sets: u64,
    ways: usize,
    clock: u64,
}

impl L1 {
    /// Creates an L1 of `lines` lines and `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `lines` is not a positive multiple of `ways`.
    pub fn new(lines: usize, ways: usize) -> Self {
        assert!(
            ways > 0 && lines > 0 && lines.is_multiple_of(ways),
            "bad L1 geometry"
        );
        Self {
            lines: vec![None; lines],
            last: vec![0; lines],
            sets: (lines / ways) as u64,
            ways,
            clock: 0,
        }
    }

    /// Accesses `addr`; returns `true` on a hit. Misses fill the line
    /// (evicting the set's LRU line).
    #[inline]
    pub fn access(&mut self, addr: LineAddr) -> bool {
        let set = (addr.0 % self.sets) as usize;
        let base = set * self.ways;
        self.clock += 1;
        let mut victim = base;
        let mut victim_last = u64::MAX;
        for f in base..base + self.ways {
            match self.lines[f] {
                Some(a) if a == addr => {
                    self.last[f] = self.clock;
                    return true;
                }
                None => {
                    if victim_last != 0 {
                        victim = f;
                        victim_last = 0;
                    }
                }
                Some(_) => {
                    if self.last[f] < victim_last {
                        victim = f;
                        victim_last = self.last[f];
                    }
                }
            }
        }
        self.lines[victim] = Some(addr);
        self.last[victim] = self.clock;
        false
    }
}

impl vantage_snapshot::Snapshot for L1 {
    fn save_state(&self, enc: &mut vantage_snapshot::Encoder) {
        let valid: Vec<u8> = self.lines.iter().map(|l| l.is_some() as u8).collect();
        let addrs: Vec<u64> = self.lines.iter().map(|l| l.map_or(0, |a| a.0)).collect();
        enc.put_u8_slice(&valid);
        enc.put_u64_slice(&addrs);
        enc.put_u64_slice(&self.last);
        enc.put_u64(self.clock);
    }

    fn load_state(
        &mut self,
        dec: &mut vantage_snapshot::Decoder<'_>,
    ) -> vantage_snapshot::Result<()> {
        let valid = dec.take_u8_vec()?;
        let addrs = dec.take_u64_vec()?;
        let last = dec.take_u64_vec()?;
        let clock = dec.take_u64()?;
        let n = self.lines.len();
        if valid.len() != n || addrs.len() != n || last.len() != n {
            return Err(dec.mismatch("L1 geometry differs"));
        }
        if valid.iter().any(|&v| v > 1) {
            return Err(dec.invalid("L1 valid bit out of range"));
        }
        if last.iter().any(|&t| t > clock) {
            return Err(dec.invalid("L1 touch time ahead of the clock"));
        }
        for (f, (&v, &a)) in valid.iter().zip(&addrs).enumerate() {
            self.lines[f] = (v == 1).then_some(LineAddr(a));
        }
        self.last = last;
        self.clock = clock;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_working_set_up_to_capacity() {
        let mut l1 = L1::new(64, 4);
        for i in 0..64u64 {
            assert!(!l1.access(LineAddr(i)));
        }
        // Modulo-indexed sequential fill is conflict-free: all hits now.
        for i in 0..64u64 {
            assert!(l1.access(LineAddr(i)));
        }
    }

    #[test]
    fn evicts_lru_within_set() {
        let mut l1 = L1::new(16, 4); // 4 sets
                                     // Fill set 0 with 0, 4, 8, 12; touch 0 so 4 is LRU.
        for a in [0u64, 4, 8, 12, 0] {
            l1.access(LineAddr(a));
        }
        l1.access(LineAddr(16)); // maps to set 0, evicts 4
        assert!(l1.access(LineAddr(0)));
        assert!(!l1.access(LineAddr(4)));
    }

    #[test]
    fn streaming_misses_continuously() {
        let mut l1 = L1::new(512, 4);
        let misses = (0..10_000u64)
            .filter(|&i| !l1.access(LineAddr(i * 3)))
            .count();
        assert!(misses > 9_000);
    }
}
