//! Scheme instantiation: turning a [`SchemeKind`] into a live LLC.

use std::error::Error;
use std::fmt;

use vantage::{RankMode, VantageError, VantageLlc};
use vantage_cache::{
    CacheArray, RandomArray, RripConfig, RripMode, SetAssocArray, SkewArray, ZArray,
};
use vantage_partitioning::{
    BaselineLlc, Llc, PippConfig, PippLlc, RankPolicy, SchemeConfigError, WayPartLlc,
};
use vantage_telemetry::Telemetry;

use crate::config::{ArrayKind, BaselineRank, SchemeKind, SystemConfig};

/// A scheme that cannot be instantiated on the requested machine.
#[derive(Clone, Debug, PartialEq)]
pub enum BuildError {
    /// The Vantage controller rejected its configuration.
    Vantage(VantageError),
    /// A baseline/way-partitioning/PIPP geometry error.
    Scheme(SchemeConfigError),
    /// `Vantage-DRRIP` was requested over a non-RRIP `VantageConfig`.
    DrripNeedsRrip,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Vantage(e) => e.fmt(f),
            Self::Scheme(e) => e.fmt(f),
            Self::DrripNeedsRrip => {
                f.write_str("Vantage-DRRIP needs RRIP ranking in its VantageConfig")
            }
        }
    }
}

impl Error for BuildError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Vantage(e) => Some(e),
            Self::Scheme(e) => Some(e),
            Self::DrripNeedsRrip => None,
        }
    }
}

impl From<VantageError> for BuildError {
    fn from(e: VantageError) -> Self {
        Self::Vantage(e)
    }
}

impl From<SchemeConfigError> for BuildError {
    fn from(e: SchemeConfigError) -> Self {
        Self::Scheme(e)
    }
}

/// A live LLC of any scheme, with scheme-specific instrumentation surfaced
/// without downcasting.
///
/// `Vantage` dwarfs the other variants (controller registers, setpoint
/// histograms), but exactly one `Scheme` exists per simulated system, so the
/// wasted bytes never multiply and boxing would only add indirection.
#[allow(clippy::large_enum_variant)]
pub enum Scheme {
    /// Unpartitioned baseline.
    Baseline(BaselineLlc),
    /// Way-partitioning.
    WayPart(WayPartLlc),
    /// PIPP.
    Pipp(PippLlc),
    /// Vantage.
    Vantage(VantageLlc),
}

fn build_array(kind: ArrayKind, lines: usize, seed: u64) -> Box<dyn CacheArray> {
    match kind {
        ArrayKind::SetAssoc { ways } => Box::new(SetAssocArray::hashed(lines, ways, seed)),
        ArrayKind::Z { ways, candidates } => Box::new(ZArray::new(lines, ways, candidates, seed)),
        ArrayKind::Skew { ways } => Box::new(SkewArray::new(lines, ways, seed)),
        ArrayKind::Random { candidates } => Box::new(RandomArray::new(lines, candidates, seed)),
    }
}

impl Scheme {
    /// Builds the LLC described by `kind` for machine `sys`.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent configurations (e.g. more partitions than
    /// ways for way-granularity schemes); use [`Scheme::try_build`] to
    /// handle the error instead.
    pub fn build(kind: &SchemeKind, sys: &SystemConfig) -> Self {
        match Self::try_build(kind, sys) {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`Scheme::build`] with typed errors instead of panics.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] when the scheme cannot be instantiated:
    /// controller configuration errors for Vantage, geometry errors for the
    /// way-granularity schemes, or a Vantage-DRRIP request over a non-RRIP
    /// ranking mode.
    pub fn try_build(kind: &SchemeKind, sys: &SystemConfig) -> Result<Self, BuildError> {
        let seed = sys.seed ^ 0xCAC4E;
        Ok(match kind {
            SchemeKind::Baseline { array, rank } => {
                let arr = build_array(*array, sys.l2_lines, seed);
                let policy = match rank {
                    BaselineRank::Lru => RankPolicy::Lru,
                    BaselineRank::Srrip => {
                        RankPolicy::Rrip(RripConfig::paper(RripMode::Srrip, sys.cores, seed))
                    }
                    BaselineRank::Drrip => {
                        RankPolicy::Rrip(RripConfig::paper(RripMode::Drrip, sys.cores, seed))
                    }
                    BaselineRank::TaDrrip => {
                        RankPolicy::Rrip(RripConfig::paper(RripMode::TaDrrip, sys.cores, seed))
                    }
                };
                Scheme::Baseline(BaselineLlc::try_new(arr, sys.cores, policy)?)
            }
            SchemeKind::WayPart => Scheme::WayPart(WayPartLlc::try_new(
                sys.l2_lines,
                sys.l2_ways,
                sys.cores,
                seed,
            )?),
            SchemeKind::Pipp => Scheme::Pipp(PippLlc::try_new(
                sys.l2_lines,
                sys.l2_ways,
                sys.cores,
                PippConfig::default(),
                seed,
            )?),
            SchemeKind::Vantage { array, cfg, drrip } => {
                if *drrip && !matches!(cfg.rank, RankMode::Rrip { .. }) {
                    return Err(BuildError::DrripNeedsRrip);
                }
                let arr = build_array(*array, sys.l2_lines, seed);
                Scheme::Vantage(VantageLlc::try_new(arr, sys.cores, cfg.clone(), seed)?)
            }
        })
    }

    /// The scheme as a trait object.
    pub fn llc(&self) -> &dyn Llc {
        match self {
            Scheme::Baseline(l) => l,
            Scheme::WayPart(l) => l,
            Scheme::Pipp(l) => l,
            Scheme::Vantage(l) => l,
        }
    }

    /// The scheme as a mutable trait object.
    pub fn llc_mut(&mut self) -> &mut dyn Llc {
        match self {
            Scheme::Baseline(l) => l,
            Scheme::WayPart(l) => l,
            Scheme::Pipp(l) => l,
            Scheme::Vantage(l) => l,
        }
    }

    /// Whether UCP should drive this scheme (baselines are unmanaged).
    pub fn uses_ucp(&self) -> bool {
        !matches!(self, Scheme::Baseline(_))
    }

    /// Vantage-specific instrumentation, when the scheme is Vantage.
    pub fn as_vantage(&self) -> Option<&VantageLlc> {
        match self {
            Scheme::Vantage(l) => Some(l),
            _ => None,
        }
    }

    /// Mutable Vantage access (for DRRIP policy updates, probes).
    pub fn as_vantage_mut(&mut self) -> Option<&mut VantageLlc> {
        match self {
            Scheme::Vantage(l) => Some(l),
            _ => None,
        }
    }

    /// Installs a telemetry producer on the underlying cache.
    ///
    /// Returns `false` when the scheme does not support telemetry (see
    /// [`Llc::set_telemetry`]).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) -> bool {
        self.llc_mut().set_telemetry(telemetry)
    }

    /// Detaches the telemetry producer, flushing its sink.
    pub fn take_telemetry(&mut self) -> Option<Telemetry> {
        self.llc_mut().take_telemetry()
    }

    /// Enables eviction/demotion priority probes where supported
    /// (way-partitioning and Vantage-LRU; others ignore the request).
    pub fn enable_priority_probe(&mut self) {
        match self {
            Scheme::WayPart(l) => l.enable_priority_probe(),
            Scheme::Vantage(l) => l.enable_priority_probe(),
            _ => {}
        }
    }

    /// Drains accumulated priority samples (empty when unsupported).
    pub fn drain_priority_samples(&mut self) -> Vec<(u64, u16, f32)> {
        match self {
            Scheme::WayPart(l) => l.drain_priority_samples(),
            Scheme::Vantage(l) => l.drain_priority_samples(),
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vantage::VantageConfig;

    #[test]
    fn all_schemes_build_and_serve() {
        let sys = SystemConfig::small_scale();
        let kinds = [
            SchemeKind::Baseline {
                array: ArrayKind::SetAssoc { ways: 16 },
                rank: BaselineRank::Lru,
            },
            SchemeKind::Baseline {
                array: ArrayKind::Z4_52,
                rank: BaselineRank::TaDrrip,
            },
            SchemeKind::WayPart,
            SchemeKind::Pipp,
            SchemeKind::vantage_paper(),
            SchemeKind::Vantage {
                array: ArrayKind::Random { candidates: 52 },
                cfg: VantageConfig::default(),
                drrip: false,
            },
        ];
        for kind in &kinds {
            let mut s = Scheme::build(kind, &sys);
            for i in 0..1000u64 {
                s.llc_mut()
                    .access((i % 4) as usize, vantage_cache::LineAddr(i % 300));
            }
            assert!(s.llc().stats().total_hits() > 0, "{}", kind.label());
            assert_eq!(s.llc().num_partitions(), 4);
        }
    }

    #[test]
    fn ucp_flag_matches_scheme() {
        let sys = SystemConfig::small_scale();
        let base = Scheme::build(
            &SchemeKind::Baseline {
                array: ArrayKind::Z4_52,
                rank: BaselineRank::Lru,
            },
            &sys,
        );
        assert!(!base.uses_ucp());
        let v = Scheme::build(&SchemeKind::vantage_paper(), &sys);
        assert!(v.uses_ucp());
        assert!(v.as_vantage().is_some());
    }

    #[test]
    #[should_panic(expected = "RRIP ranking")]
    fn drrip_requires_rrip_rank() {
        let sys = SystemConfig::small_scale();
        let kind = SchemeKind::Vantage {
            array: ArrayKind::Z4_52,
            cfg: VantageConfig::default(),
            drrip: true,
        };
        Scheme::build(&kind, &sys);
    }

    #[test]
    fn try_build_surfaces_config_errors() {
        let sys = SystemConfig::small_scale();
        let kind = SchemeKind::Vantage {
            array: ArrayKind::Z4_52,
            cfg: VantageConfig::default(),
            drrip: true,
        };
        assert_eq!(
            Scheme::try_build(&kind, &sys).err(),
            Some(BuildError::DrripNeedsRrip)
        );

        // Way-granularity schemes cannot host more partitions than ways.
        let mut crowded = SystemConfig::small_scale();
        crowded.cores = 32; // 32 partitions over a 16-way L2
        assert!(matches!(
            Scheme::try_build(&SchemeKind::WayPart, &crowded),
            Err(BuildError::Scheme(
                SchemeConfigError::PartitionsExceedWays { .. }
            ))
        ));

        // A bad Vantage controller config surfaces as a typed error too.
        let kind = SchemeKind::Vantage {
            array: ArrayKind::Z4_52,
            cfg: VantageConfig {
                unmanaged_fraction: 1.5,
                ..VantageConfig::default()
            },
            drrip: false,
        };
        assert!(matches!(
            Scheme::try_build(&kind, &sys),
            Err(BuildError::Vantage(_))
        ));
    }

    #[test]
    fn telemetry_forwards_to_the_underlying_llc() {
        use vantage_telemetry::RingSink;
        let sys = SystemConfig::small_scale();
        let mut s = Scheme::build(&SchemeKind::vantage_paper(), &sys);
        let (sink, reader) = RingSink::with_capacity(1 << 16);
        assert!(s.set_telemetry(Telemetry::new(Box::new(sink), 256)));
        for i in 0..4096u64 {
            s.llc_mut()
                .access((i % 4) as usize, vantage_cache::LineAddr(i % 900));
        }
        assert!(s.take_telemetry().is_some());
        assert!(!reader.is_empty(), "no telemetry records forwarded");
    }
}
