//! Scheme instantiation: turning a [`SchemeKind`] into a live LLC.

use vantage::{RankMode, VantageLlc};
use vantage_cache::{
    CacheArray, RandomArray, RripConfig, RripMode, SetAssocArray, SkewArray, ZArray,
};
use vantage_partitioning::{BaselineLlc, Llc, PippConfig, PippLlc, RankPolicy, WayPartLlc};

use crate::config::{ArrayKind, BaselineRank, SchemeKind, SystemConfig};

/// A live LLC of any scheme, with scheme-specific instrumentation surfaced
/// without downcasting.
///
/// `Vantage` dwarfs the other variants (controller registers, setpoint
/// histograms), but exactly one `Scheme` exists per simulated system, so the
/// wasted bytes never multiply and boxing would only add indirection.
#[allow(clippy::large_enum_variant)]
pub enum Scheme {
    /// Unpartitioned baseline.
    Baseline(BaselineLlc),
    /// Way-partitioning.
    WayPart(WayPartLlc),
    /// PIPP.
    Pipp(PippLlc),
    /// Vantage.
    Vantage(VantageLlc),
}

fn build_array(kind: ArrayKind, lines: usize, seed: u64) -> Box<dyn CacheArray> {
    match kind {
        ArrayKind::SetAssoc { ways } => Box::new(SetAssocArray::hashed(lines, ways, seed)),
        ArrayKind::Z { ways, candidates } => Box::new(ZArray::new(lines, ways, candidates, seed)),
        ArrayKind::Skew { ways } => Box::new(SkewArray::new(lines, ways, seed)),
        ArrayKind::Random { candidates } => Box::new(RandomArray::new(lines, candidates, seed)),
    }
}

impl Scheme {
    /// Builds the LLC described by `kind` for machine `sys`.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent configurations (e.g. more partitions than
    /// ways for way-granularity schemes).
    pub fn build(kind: &SchemeKind, sys: &SystemConfig) -> Self {
        let seed = sys.seed ^ 0xCAC4E;
        match kind {
            SchemeKind::Baseline { array, rank } => {
                let arr = build_array(*array, sys.l2_lines, seed);
                let policy = match rank {
                    BaselineRank::Lru => RankPolicy::Lru,
                    BaselineRank::Srrip => {
                        RankPolicy::Rrip(RripConfig::paper(RripMode::Srrip, sys.cores, seed))
                    }
                    BaselineRank::Drrip => {
                        RankPolicy::Rrip(RripConfig::paper(RripMode::Drrip, sys.cores, seed))
                    }
                    BaselineRank::TaDrrip => {
                        RankPolicy::Rrip(RripConfig::paper(RripMode::TaDrrip, sys.cores, seed))
                    }
                };
                Scheme::Baseline(BaselineLlc::new(arr, sys.cores, policy))
            }
            SchemeKind::WayPart => {
                Scheme::WayPart(WayPartLlc::new(sys.l2_lines, sys.l2_ways, sys.cores, seed))
            }
            SchemeKind::Pipp => Scheme::Pipp(PippLlc::new(
                sys.l2_lines,
                sys.l2_ways,
                sys.cores,
                PippConfig::default(),
                seed,
            )),
            SchemeKind::Vantage { array, cfg, drrip } => {
                if *drrip {
                    assert!(
                        matches!(cfg.rank, RankMode::Rrip { .. }),
                        "Vantage-DRRIP needs RRIP ranking in its VantageConfig"
                    );
                }
                let arr = build_array(*array, sys.l2_lines, seed);
                Scheme::Vantage(VantageLlc::new(arr, sys.cores, cfg.clone(), seed))
            }
        }
    }

    /// The scheme as a trait object.
    pub fn llc(&self) -> &dyn Llc {
        match self {
            Scheme::Baseline(l) => l,
            Scheme::WayPart(l) => l,
            Scheme::Pipp(l) => l,
            Scheme::Vantage(l) => l,
        }
    }

    /// The scheme as a mutable trait object.
    pub fn llc_mut(&mut self) -> &mut dyn Llc {
        match self {
            Scheme::Baseline(l) => l,
            Scheme::WayPart(l) => l,
            Scheme::Pipp(l) => l,
            Scheme::Vantage(l) => l,
        }
    }

    /// Whether UCP should drive this scheme (baselines are unmanaged).
    pub fn uses_ucp(&self) -> bool {
        !matches!(self, Scheme::Baseline(_))
    }

    /// Vantage-specific statistics, when the scheme is Vantage.
    pub fn vantage(&self) -> Option<&VantageLlc> {
        match self {
            Scheme::Vantage(l) => Some(l),
            _ => None,
        }
    }

    /// Mutable Vantage access (for DRRIP policy updates, probes).
    pub fn vantage_mut(&mut self) -> Option<&mut VantageLlc> {
        match self {
            Scheme::Vantage(l) => Some(l),
            _ => None,
        }
    }

    /// Enables eviction/demotion priority probes where supported
    /// (way-partitioning and Vantage-LRU; others ignore the request).
    pub fn enable_priority_probe(&mut self) {
        match self {
            Scheme::WayPart(l) => l.enable_priority_probe(),
            Scheme::Vantage(l) => l.enable_priority_probe(),
            _ => {}
        }
    }

    /// Drains accumulated priority samples (empty when unsupported).
    pub fn drain_priority_samples(&mut self) -> Vec<(u64, u16, f32)> {
        match self {
            Scheme::WayPart(l) => l.drain_priority_samples(),
            Scheme::Vantage(l) => l.drain_priority_samples(),
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vantage::VantageConfig;

    #[test]
    fn all_schemes_build_and_serve() {
        let sys = SystemConfig::small_scale();
        let kinds = [
            SchemeKind::Baseline {
                array: ArrayKind::SetAssoc { ways: 16 },
                rank: BaselineRank::Lru,
            },
            SchemeKind::Baseline {
                array: ArrayKind::Z4_52,
                rank: BaselineRank::TaDrrip,
            },
            SchemeKind::WayPart,
            SchemeKind::Pipp,
            SchemeKind::vantage_paper(),
            SchemeKind::Vantage {
                array: ArrayKind::Random { candidates: 52 },
                cfg: VantageConfig::default(),
                drrip: false,
            },
        ];
        for kind in &kinds {
            let mut s = Scheme::build(kind, &sys);
            for i in 0..1000u64 {
                s.llc_mut()
                    .access((i % 4) as usize, vantage_cache::LineAddr(i % 300));
            }
            assert!(s.llc().stats().total_hits() > 0, "{}", kind.label());
            assert_eq!(s.llc().num_partitions(), 4);
        }
    }

    #[test]
    fn ucp_flag_matches_scheme() {
        let sys = SystemConfig::small_scale();
        let base = Scheme::build(
            &SchemeKind::Baseline {
                array: ArrayKind::Z4_52,
                rank: BaselineRank::Lru,
            },
            &sys,
        );
        assert!(!base.uses_ucp());
        let v = Scheme::build(&SchemeKind::vantage_paper(), &sys);
        assert!(v.uses_ucp());
        assert!(v.vantage().is_some());
    }

    #[test]
    #[should_panic(expected = "RRIP ranking")]
    fn drrip_requires_rrip_rank() {
        let sys = SystemConfig::small_scale();
        let kind = SchemeKind::Vantage {
            array: ArrayKind::Z4_52,
            cfg: VantageConfig::default(),
            drrip: true,
        };
        Scheme::build(&kind, &sys);
    }
}
