//! Scheme instantiation: turning a [`SchemeKind`] into a live LLC.

use std::error::Error;
use std::fmt;

use vantage::{EngineKind, RankMode, VantageError, VantageLlc};
use vantage_cache::hash::mix64;
use vantage_cache::{
    CacheArray, RandomArray, RripConfig, RripMode, SetAssocArray, SkewArray, ZArray,
};
use vantage_partitioning::{
    BankedLlc, BaselineLlc, HasInvariants, HasPartitionPolicy, LifecycleError, Llc,
    ParallelBankedLlc, PartitionId, PartitionSpec, PipelinedBankedLlc, PippConfig, PippLlc,
    RankPolicy, SchemeConfigError, Sharded, WayPartLlc,
};
use vantage_telemetry::Telemetry;

use crate::config::{ArrayKind, BaselineRank, SchemeKind, SysConfigError, SystemConfig};

/// A scheme that cannot be instantiated on the requested machine.
#[derive(Clone, Debug, PartialEq)]
pub enum BuildError {
    /// The Vantage controller rejected its configuration.
    Vantage(VantageError),
    /// A baseline/way-partitioning/PIPP geometry error.
    Scheme(SchemeConfigError),
    /// `Vantage-DRRIP` was requested over a non-RRIP `VantageConfig`.
    DrripNeedsRrip,
    /// `Vantage-DRRIP` was requested on a banked machine; per-partition
    /// policy updates need direct controller access, which banking hides.
    BankedDrrip,
    /// The machine description itself is inconsistent.
    System(SysConfigError),
    /// A fault plan was requested for a scheme that cannot host one (only
    /// unbanked Vantage carries an attached [`FaultPlan`](vantage::FaultPlan)).
    FaultPlanUnsupported,
    /// A telemetry handle was provided but the scheme rejected it (disabled
    /// handle, or a bank refused the fan-out).
    TelemetryRejected,
    /// A non-default [`ShareMode`](vantage_cache::ShareMode) was requested
    /// but the scheme does not implement the ownership layer.
    ShareModeUnsupported,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Vantage(e) => e.fmt(f),
            Self::Scheme(e) => e.fmt(f),
            Self::DrripNeedsRrip => {
                f.write_str("Vantage-DRRIP needs RRIP ranking in its VantageConfig")
            }
            Self::BankedDrrip => f.write_str("Vantage-DRRIP cannot run on a banked machine"),
            Self::System(e) => e.fmt(f),
            Self::FaultPlanUnsupported => {
                f.write_str("fault plans attach to unbanked Vantage schemes only")
            }
            Self::TelemetryRejected => f.write_str("the scheme rejected the telemetry handle"),
            Self::ShareModeUnsupported => {
                f.write_str("the scheme does not support the requested share mode")
            }
        }
    }
}

impl Error for BuildError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Vantage(e) => Some(e),
            Self::Scheme(e) => Some(e),
            Self::System(e) => Some(e),
            Self::DrripNeedsRrip
            | Self::BankedDrrip
            | Self::FaultPlanUnsupported
            | Self::TelemetryRejected
            | Self::ShareModeUnsupported => None,
        }
    }
}

impl From<SysConfigError> for BuildError {
    fn from(e: SysConfigError) -> Self {
        Self::System(e)
    }
}

impl From<VantageError> for BuildError {
    fn from(e: VantageError) -> Self {
        Self::Vantage(e)
    }
}

impl From<SchemeConfigError> for BuildError {
    fn from(e: SchemeConfigError) -> Self {
        Self::Scheme(e)
    }
}

/// A live LLC of any scheme, with scheme-specific instrumentation surfaced
/// without downcasting.
///
/// `Vantage` dwarfs the other variants (controller registers, setpoint
/// histograms), but exactly one `Scheme` exists per simulated system, so the
/// wasted bytes never multiply and boxing would only add indirection.
#[allow(clippy::large_enum_variant)]
pub enum Scheme {
    /// Unpartitioned baseline.
    Baseline(BaselineLlc),
    /// Way-partitioning.
    WayPart(WayPartLlc),
    /// PIPP.
    Pipp(PippLlc),
    /// Vantage.
    Vantage(VantageLlc),
    /// Any of the above sharded across address-interleaved banks
    /// (`SystemConfig::banks > 1`), served serially.
    Banked {
        /// The sharded cache.
        llc: BankedLlc,
        /// Whether UCP drives the wrapped scheme (false for baselines).
        ucp: bool,
    },
    /// A banked machine served by a worker pool
    /// (`SystemConfig::bank_jobs > 1`); results are bit-identical to
    /// [`Scheme::Banked`].
    ParallelBanked {
        /// The sharded cache and its worker pool.
        llc: ParallelBankedLlc,
        /// Whether UCP drives the wrapped scheme (false for baselines).
        ucp: bool,
    },
    /// A banked machine fed through per-bank ring buffers with bank-major
    /// drains (`SystemConfig::engine == EngineKind::Pipelined`); queued
    /// work flushes at epoch barriers ([`Scheme::epoch_barrier`]). Results
    /// are bit-identical to [`Scheme::Banked`].
    Pipelined {
        /// The ring-buffered sharded cache.
        llc: PipelinedBankedLlc,
        /// Whether UCP drives the wrapped scheme (false for baselines).
        ucp: bool,
    },
}

fn build_array(kind: ArrayKind, lines: usize, seed: u64) -> Box<dyn CacheArray> {
    match kind {
        ArrayKind::SetAssoc { ways } => Box::new(SetAssocArray::hashed(lines, ways, seed)),
        ArrayKind::Z { ways, candidates } => Box::new(ZArray::new(lines, ways, candidates, seed)),
        ArrayKind::Skew { ways } => Box::new(SkewArray::new(lines, ways, seed)),
        ArrayKind::Random { candidates } => Box::new(RandomArray::new(lines, candidates, seed)),
    }
}

impl Scheme {
    /// Builds the LLC described by `kind` for machine `sys`. Prefer
    /// [`Scheme::builder`] when telemetry, fault plans or banking overrides
    /// are also in play — it validates and applies everything in one chain.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] when the scheme cannot be instantiated:
    /// controller configuration errors for Vantage, geometry errors for the
    /// way-granularity schemes, a Vantage-DRRIP request over a non-RRIP
    /// ranking mode, or a Vantage-DRRIP request on a banked machine.
    pub fn try_build(kind: &SchemeKind, sys: &SystemConfig) -> Result<Self, BuildError> {
        let mut scheme = Self::try_build_unmoded(kind, sys)?;
        // The ownership layer's mode is orthogonal to construction: every
        // scheme starts in the bit-identical Adopt default and is switched
        // while still cold. Banked engines fan the call out to every shard.
        if sys.share_mode != vantage_cache::ShareMode::Adopt
            && !scheme.llc_mut().set_share_mode(sys.share_mode)
        {
            return Err(BuildError::ShareModeUnsupported);
        }
        Ok(scheme)
    }

    fn try_build_unmoded(kind: &SchemeKind, sys: &SystemConfig) -> Result<Self, BuildError> {
        if sys.banks > 1 {
            if matches!(kind, SchemeKind::Vantage { drrip: true, .. }) {
                return Err(BuildError::BankedDrrip);
            }
            let mut shard = sys.clone();
            shard.banks = 1;
            shard.l2_lines = sys.l2_lines / sys.banks;
            let banks = (0..sys.banks)
                .map(|b| {
                    shard.seed = sys.seed ^ mix64(b as u64 + 0xBA);
                    Self::try_build(kind, &shard).map(Scheme::into_llc)
                })
                .collect::<Result<Vec<_>, _>>()?;
            let banked = BankedLlc::try_new(banks, sys.seed ^ 0xBA2C)?;
            let ucp = !matches!(kind, SchemeKind::Baseline { .. });
            return Ok(match sys.engine {
                EngineKind::Pipelined => Scheme::Pipelined {
                    llc: PipelinedBankedLlc::from_banked(banked, sys.bank_jobs),
                    ucp,
                },
                EngineKind::Serial | EngineKind::Batched if sys.bank_jobs > 1 => {
                    Scheme::ParallelBanked {
                        llc: ParallelBankedLlc::from_banked(banked, sys.bank_jobs),
                        ucp,
                    }
                }
                EngineKind::Serial | EngineKind::Batched => Scheme::Banked { llc: banked, ucp },
            });
        }
        let seed = sys.seed ^ 0xCAC4E;
        Ok(match kind {
            SchemeKind::Baseline { array, rank } => {
                let arr = build_array(*array, sys.l2_lines, seed);
                let policy = match rank {
                    BaselineRank::Lru => RankPolicy::Lru,
                    BaselineRank::Srrip => {
                        RankPolicy::Rrip(RripConfig::paper(RripMode::Srrip, sys.cores, seed))
                    }
                    BaselineRank::Drrip => {
                        RankPolicy::Rrip(RripConfig::paper(RripMode::Drrip, sys.cores, seed))
                    }
                    BaselineRank::TaDrrip => {
                        RankPolicy::Rrip(RripConfig::paper(RripMode::TaDrrip, sys.cores, seed))
                    }
                };
                Scheme::Baseline(BaselineLlc::try_new(arr, sys.cores, policy)?)
            }
            SchemeKind::WayPart => Scheme::WayPart(WayPartLlc::try_new(
                sys.l2_lines,
                sys.l2_ways,
                sys.cores,
                seed,
            )?),
            SchemeKind::Pipp => Scheme::Pipp(PippLlc::try_new(
                sys.l2_lines,
                sys.l2_ways,
                sys.cores,
                PippConfig::default(),
                seed,
            )?),
            SchemeKind::Vantage { array, cfg, drrip } => {
                if *drrip && !matches!(cfg.rank, RankMode::Rrip { .. }) {
                    return Err(BuildError::DrripNeedsRrip);
                }
                let arr = build_array(*array, sys.l2_lines, seed);
                Scheme::Vantage(VantageLlc::try_new(arr, sys.cores, cfg.clone(), seed)?)
            }
        })
    }

    /// Consumes the scheme into a boxed trait object (used to stack
    /// single-bank schemes into a [`BankedLlc`]).
    fn into_llc(self) -> Box<dyn Llc> {
        match self {
            Scheme::Baseline(l) => Box::new(l),
            Scheme::WayPart(l) => Box::new(l),
            Scheme::Pipp(l) => Box::new(l),
            Scheme::Vantage(l) => Box::new(l),
            Scheme::Banked { llc, .. } => Box::new(llc),
            Scheme::ParallelBanked { llc, .. } => Box::new(llc),
            Scheme::Pipelined { llc, .. } => Box::new(llc),
        }
    }

    /// The scheme as a trait object.
    pub fn llc(&self) -> &dyn Llc {
        match self {
            Scheme::Baseline(l) => l,
            Scheme::WayPart(l) => l,
            Scheme::Pipp(l) => l,
            Scheme::Vantage(l) => l,
            Scheme::Banked { llc, .. } => llc,
            Scheme::ParallelBanked { llc, .. } => llc,
            Scheme::Pipelined { llc, .. } => llc,
        }
    }

    /// The scheme as a mutable trait object.
    pub fn llc_mut(&mut self) -> &mut dyn Llc {
        match self {
            Scheme::Baseline(l) => l,
            Scheme::WayPart(l) => l,
            Scheme::Pipp(l) => l,
            Scheme::Vantage(l) => l,
            Scheme::Banked { llc, .. } => llc,
            Scheme::ParallelBanked { llc, .. } => llc,
            Scheme::Pipelined { llc, .. } => llc,
        }
    }

    /// Quiesces engines that queue work between barriers: the pipelined
    /// engine's rings drain (bank-major) so every access issued so far is
    /// reflected in stats, sizes and snapshots. A no-op on every other
    /// scheme. Drive loops call this before epoch repartitioning and
    /// before checkpoints — the two points whose results must not depend
    /// on the engine.
    pub fn epoch_barrier(&mut self) {
        if let Scheme::Pipelined { llc, .. } = self {
            llc.barrier();
        }
    }

    /// Creates a partition at runtime (service mode); forwards to the
    /// scheme's [`Llc::create_partition`].
    ///
    /// # Errors
    ///
    /// Whatever the scheme reports — [`LifecycleError::Unsupported`] on
    /// schemes without runtime lifecycle, [`LifecycleError::Exhausted`]
    /// when the slot space is full.
    pub fn create_partition(&mut self, spec: PartitionSpec) -> Result<PartitionId, LifecycleError> {
        self.llc_mut().create_partition(spec)
    }

    /// Destroys a live partition (service mode); the slot drains through
    /// the scheme's ordinary demotion machinery. Forwards to
    /// [`Llc::destroy_partition`].
    ///
    /// # Errors
    ///
    /// [`LifecycleError::OutOfRange`] / [`LifecycleError::NotLive`] for
    /// bad handles, [`LifecycleError::Unsupported`] on schemes without
    /// runtime lifecycle.
    pub fn destroy_partition(&mut self, part: PartitionId) -> Result<(), LifecycleError> {
        self.llc_mut().destroy_partition(part)
    }

    /// Whether UCP should drive this scheme (baselines are unmanaged).
    pub fn uses_ucp(&self) -> bool {
        match self {
            Scheme::Baseline(_) => false,
            Scheme::Banked { ucp, .. }
            | Scheme::ParallelBanked { ucp, .. }
            | Scheme::Pipelined { ucp, .. } => *ucp,
            _ => true,
        }
    }

    /// The bank-level view of a sharded scheme (`None` when unbanked).
    pub fn as_sharded(&self) -> Option<&dyn Sharded> {
        match self {
            Scheme::Banked { llc, .. } => Some(llc),
            Scheme::ParallelBanked { llc, .. } => Some(llc),
            Scheme::Pipelined { llc, .. } => Some(llc),
            _ => None,
        }
    }

    /// The invariant-audit capability, when the scheme advertises one
    /// (see [`HasInvariants`]). Schemes without self-auditing bookkeeping
    /// return `None`.
    pub fn has_invariants(&self) -> Option<&dyn HasInvariants> {
        match self {
            Scheme::Vantage(l) => Some(l),
            _ => None,
        }
    }

    /// Mutable [`HasInvariants`] access (to run a repair pass).
    pub fn has_invariants_mut(&mut self) -> Option<&mut dyn HasInvariants> {
        match self {
            Scheme::Vantage(l) => Some(l),
            _ => None,
        }
    }

    /// The per-partition replacement-policy capability, when the scheme
    /// advertises one (see [`HasPartitionPolicy`]; Vantage-DRRIP uses it
    /// to install the dueling winner each epoch).
    pub fn has_partition_policy(&mut self) -> Option<&mut dyn HasPartitionPolicy> {
        match self {
            Scheme::Vantage(l) => Some(l),
            _ => None,
        }
    }

    /// Fraction of evictions forced from the managed region — Vantage's
    /// empirical isolation metric (`None` for schemes without a managed
    /// region).
    pub fn managed_eviction_fraction(&self) -> Option<f64> {
        match self {
            Scheme::Vantage(l) => Some(l.vantage_stats().managed_eviction_fraction()),
            _ => None,
        }
    }

    /// The attached fault-injection plan, if the scheme carries one.
    pub fn fault_plan(&self) -> Option<&vantage::FaultPlan> {
        match self {
            Scheme::Vantage(l) => l.fault_plan(),
            _ => None,
        }
    }

    /// Concrete Vantage access for build-time wiring (scrub periods, fault
    /// plans) — crate-private so external callers go through the
    /// capability traits instead of downcasting.
    pub(crate) fn vantage_mut(&mut self) -> Option<&mut VantageLlc> {
        match self {
            Scheme::Vantage(l) => Some(l),
            _ => None,
        }
    }

    /// Installs a telemetry producer on the underlying cache.
    ///
    /// Returns `false` when the scheme does not support telemetry (see
    /// [`Llc::set_telemetry`]).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) -> bool {
        self.llc_mut().set_telemetry(telemetry)
    }

    /// Detaches the telemetry producer, flushing its sink.
    pub fn take_telemetry(&mut self) -> Option<Telemetry> {
        self.llc_mut().take_telemetry()
    }

    /// Enables eviction/demotion priority probes where supported
    /// (way-partitioning and Vantage-LRU; others ignore the request).
    pub fn enable_priority_probe(&mut self) {
        match self {
            Scheme::WayPart(l) => l.enable_priority_probe(),
            Scheme::Vantage(l) => l.enable_priority_probe(),
            _ => {}
        }
    }

    /// Drains accumulated priority samples (empty when unsupported).
    pub fn drain_priority_samples(&mut self) -> Vec<(u64, u16, f32)> {
        match self {
            Scheme::WayPart(l) => l.drain_priority_samples(),
            Scheme::Vantage(l) => l.drain_priority_samples(),
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vantage::VantageConfig;
    use vantage_partitioning::AccessRequest;
    use vantage_partitioning::PartitionId;

    #[test]
    fn all_schemes_build_and_serve() {
        let sys = SystemConfig::small_scale();
        let kinds = [
            SchemeKind::Baseline {
                array: ArrayKind::SetAssoc { ways: 16 },
                rank: BaselineRank::Lru,
            },
            SchemeKind::Baseline {
                array: ArrayKind::Z4_52,
                rank: BaselineRank::TaDrrip,
            },
            SchemeKind::WayPart,
            SchemeKind::Pipp,
            SchemeKind::vantage_paper(),
            SchemeKind::Vantage {
                array: ArrayKind::Random { candidates: 52 },
                cfg: VantageConfig::default(),
                drrip: false,
            },
        ];
        for kind in &kinds {
            let mut s = Scheme::try_build(kind, &sys).expect("valid scheme config");
            for i in 0..1000u64 {
                s.llc_mut().access(AccessRequest::read(
                    PartitionId::from_index((i % 4) as usize),
                    vantage_cache::LineAddr(i % 300),
                ));
            }
            assert!(s.llc().stats().total_hits() > 0, "{}", kind.label());
            assert_eq!(s.llc().num_partitions(), 4);
        }
    }

    #[test]
    fn banked_machines_build_every_bankable_scheme() {
        let mut sys = SystemConfig::small_scale();
        sys.banks = 4;
        let kinds = [
            SchemeKind::Baseline {
                array: ArrayKind::Z4_52,
                rank: BaselineRank::Lru,
            },
            SchemeKind::WayPart,
            SchemeKind::Pipp,
            SchemeKind::vantage_paper(),
        ];
        for kind in &kinds {
            for jobs in [1usize, 2] {
                sys.bank_jobs = jobs;
                let mut s = Scheme::try_build(kind, &sys).expect("valid scheme config");
                let sharded = s.as_sharded().expect("banked scheme is sharded");
                assert_eq!(sharded.num_banks(), 4, "{}", kind.label());
                assert_eq!(s.llc().capacity(), sys.l2_lines);
                assert_eq!(s.llc().num_partitions(), 4);
                assert_eq!(
                    s.uses_ucp(),
                    !matches!(kind, SchemeKind::Baseline { .. }),
                    "{}",
                    kind.label()
                );
                for i in 0..2000u64 {
                    s.llc_mut().access(AccessRequest::read(
                        PartitionId::from_index((i % 4) as usize),
                        vantage_cache::LineAddr(i % 600),
                    ));
                }
                assert!(s.llc_mut().stats_mut().total_hits() > 0, "{}", kind.label());
            }
        }
    }

    #[test]
    fn banked_and_parallel_banked_agree_exactly() {
        let mut serial_sys = SystemConfig::small_scale();
        serial_sys.banks = 4;
        let mut par_sys = serial_sys.clone();
        par_sys.bank_jobs = 2;
        let kind = SchemeKind::vantage_paper();
        let mut serial = Scheme::try_build(&kind, &serial_sys).expect("valid scheme config");
        let mut par = Scheme::try_build(&kind, &par_sys).expect("valid scheme config");
        for i in 0..20_000u64 {
            let req = AccessRequest::read(
                PartitionId::from_index((i % 4) as usize),
                vantage_cache::LineAddr((i * 131) % 9000),
            );
            assert_eq!(serial.llc_mut().access(req), par.llc_mut().access(req));
        }
        for p in 0..4 {
            assert_eq!(
                serial.llc().partition_size(PartitionId::from_index(p)),
                par.llc().partition_size(PartitionId::from_index(p))
            );
        }
    }

    #[test]
    fn pipelined_engine_builds_and_matches_banked() {
        let mut serial_sys = SystemConfig::small_scale();
        serial_sys.banks = 4;
        let mut pipe_sys = serial_sys.clone();
        pipe_sys.engine = EngineKind::Pipelined;
        let kind = SchemeKind::vantage_paper();
        for jobs in [1usize, 2] {
            pipe_sys.bank_jobs = jobs;
            let mut serial = Scheme::try_build(&kind, &serial_sys).expect("valid scheme config");
            let mut pipe = Scheme::try_build(&kind, &pipe_sys).expect("valid scheme config");
            assert!(matches!(pipe, Scheme::Pipelined { .. }));
            assert!(pipe.uses_ucp());
            assert_eq!(pipe.as_sharded().expect("sharded").num_banks(), 4);
            let reqs: Vec<AccessRequest> = (0..30_000u64)
                .map(|i| {
                    AccessRequest::read(
                        PartitionId::from_index((i % 4) as usize),
                        vantage_cache::LineAddr((i * 131) % 9000),
                    )
                })
                .collect();
            let mut out_s = Vec::new();
            let mut out_p = Vec::new();
            for chunk in reqs.chunks(4096) {
                serial.llc_mut().access_batch(chunk, &mut out_s);
                pipe.llc_mut().access_batch(chunk, &mut out_p);
            }
            pipe.epoch_barrier();
            assert_eq!(out_s, out_p, "jobs={jobs}");
            for p in 0..4 {
                assert_eq!(
                    serial.llc().partition_size(PartitionId::from_index(p)),
                    pipe.llc().partition_size(PartitionId::from_index(p))
                );
            }
        }
    }

    #[test]
    fn banked_drrip_is_rejected() {
        let mut sys = SystemConfig::small_scale();
        sys.banks = 4;
        let kind = SchemeKind::Vantage {
            array: ArrayKind::Z4_52,
            cfg: VantageConfig {
                rank: vantage::RankMode::Rrip { bits: 2 },
                ..VantageConfig::default()
            },
            drrip: true,
        };
        assert_eq!(
            Scheme::try_build(&kind, &sys).err(),
            Some(BuildError::BankedDrrip)
        );
    }

    #[test]
    fn ucp_flag_matches_scheme() {
        let sys = SystemConfig::small_scale();
        let base = Scheme::try_build(
            &SchemeKind::Baseline {
                array: ArrayKind::Z4_52,
                rank: BaselineRank::Lru,
            },
            &sys,
        )
        .expect("valid scheme config");
        assert!(!base.uses_ucp());
        let v = Scheme::try_build(&SchemeKind::vantage_paper(), &sys).expect("valid scheme config");
        assert!(v.uses_ucp());
        assert!(v.has_invariants().is_some());
        assert!(v.managed_eviction_fraction().is_some());
    }

    #[test]
    fn try_build_surfaces_config_errors() {
        let sys = SystemConfig::small_scale();
        let kind = SchemeKind::Vantage {
            array: ArrayKind::Z4_52,
            cfg: VantageConfig::default(),
            drrip: true,
        };
        assert_eq!(
            Scheme::try_build(&kind, &sys).err(),
            Some(BuildError::DrripNeedsRrip)
        );

        // Way-granularity schemes cannot host more partitions than ways.
        let mut crowded = SystemConfig::small_scale();
        crowded.cores = 32; // 32 partitions over a 16-way L2
        assert!(matches!(
            Scheme::try_build(&SchemeKind::WayPart, &crowded),
            Err(BuildError::Scheme(
                SchemeConfigError::PartitionsExceedWays { .. }
            ))
        ));

        // A bad Vantage controller config surfaces as a typed error too.
        let kind = SchemeKind::Vantage {
            array: ArrayKind::Z4_52,
            cfg: VantageConfig {
                unmanaged_fraction: 1.5,
                ..VantageConfig::default()
            },
            drrip: false,
        };
        assert!(matches!(
            Scheme::try_build(&kind, &sys),
            Err(BuildError::Vantage(_))
        ));
    }

    #[test]
    fn telemetry_forwards_to_the_underlying_llc() {
        use vantage_telemetry::RingSink;
        let sys = SystemConfig::small_scale();
        let mut s =
            Scheme::try_build(&SchemeKind::vantage_paper(), &sys).expect("valid scheme config");
        let (sink, reader) = RingSink::with_capacity(1 << 16);
        assert!(s.set_telemetry(Telemetry::new(Box::new(sink), 256)));
        for i in 0..4096u64 {
            s.llc_mut().access(AccessRequest::read(
                PartitionId::from_index((i % 4) as usize),
                vantage_cache::LineAddr(i % 900),
            ));
        }
        assert!(s.take_telemetry().is_some());
        assert!(!reader.is_empty(), "no telemetry records forwarded");
    }
}
