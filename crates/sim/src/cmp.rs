//! The multicore simulation loop.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::path::Path;

use vantage_cache::hash::mix64;
use vantage_partitioning::{AccessRequest, PartitionId};
use vantage_snapshot::{Encoder, Snapshot, SnapshotReader, SnapshotWriter};
use vantage_workloads::{AppGen, Mix, RefStream};

use crate::config::{PolicyKind, SchemeKind, SystemConfig};
use crate::epoch::{EpochController, Reconfig, ReconfigError, SimError};
use crate::l1::L1;
use crate::scheme::Scheme;

/// One sample of the partition-size time series (Fig. 8).
#[derive(Clone, Debug)]
pub struct TraceSample {
    /// Global cycle of the sample.
    pub cycle: u64,
    /// UCP targets in effect (lines of total cache).
    pub targets: Vec<u64>,
    /// Actual partition sizes (lines).
    pub actuals: Vec<u64>,
}

/// Results of one simulation.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Scheme label (e.g. `Vantage-Z4/52`).
    pub label: String,
    /// Per-core IPC over each core's measured instruction quota.
    pub ipc: Vec<f64>,
    /// Aggregate throughput `Σ IPC` — the paper's headline metric.
    pub throughput: f64,
    /// L2 accesses per core within the measured window.
    pub l2_accesses: Vec<u64>,
    /// L2 misses per core within the measured window.
    pub l2_misses: Vec<u64>,
    /// L2 misses per kilo-instruction per core.
    pub mpki: Vec<f64>,
    /// Fraction of evictions forced from the managed region (Vantage only).
    pub managed_eviction_fraction: Option<f64>,
    /// Invariant violations found at epoch boundaries and absorbed by an
    /// in-place repair (always 0 unless `check_invariants` is set).
    pub invariant_recoveries: u64,
    /// Live reconfigurations that failed post-swap invariants and were
    /// rolled back (see [`CmpSim::reconfigure`]).
    pub reconfig_rollbacks: u64,
    /// Partition-size samples (when tracing was enabled).
    pub trace: Vec<TraceSample>,
    /// Demotion/eviction priority samples (when the probe was enabled).
    pub priority_samples: Vec<(u64, u16, f32)>,
}

struct CoreState {
    gen: Box<dyn RefStream + Send>,
    l1: L1,
    time: u64,
    instrs: u64,
    done_at: Option<u64>,
    l2_accesses: u64,
    l2_misses: u64,
    measured_l2_accesses: u64,
    measured_l2_misses: u64,
}

impl Snapshot for CoreState {
    fn save_state(&self, enc: &mut Encoder) {
        self.gen.save_state(enc);
        self.l1.save_state(enc);
        enc.put_u64(self.time);
        enc.put_u64(self.instrs);
        enc.put_opt_u64(self.done_at);
        enc.put_u64(self.l2_accesses);
        enc.put_u64(self.l2_misses);
        enc.put_u64(self.measured_l2_accesses);
        enc.put_u64(self.measured_l2_misses);
    }

    fn load_state(
        &mut self,
        dec: &mut vantage_snapshot::Decoder<'_>,
    ) -> vantage_snapshot::Result<()> {
        self.gen.load_state(dec)?;
        self.l1.load_state(dec)?;
        let time = dec.take_u64()?;
        let instrs = dec.take_u64()?;
        let done_at = dec.take_opt_u64()?;
        let l2_accesses = dec.take_u64()?;
        let l2_misses = dec.take_u64()?;
        let measured_l2_accesses = dec.take_u64()?;
        let measured_l2_misses = dec.take_u64()?;
        if l2_misses > l2_accesses || measured_l2_misses > measured_l2_accesses {
            return Err(dec.invalid("more misses than accesses"));
        }
        if measured_l2_accesses > l2_accesses {
            return Err(dec.invalid("measured window exceeds the total access count"));
        }
        if let Some(at) = done_at {
            if at > time {
                return Err(dec.invalid("core finished in its own future"));
            }
        }
        self.time = time;
        self.instrs = instrs;
        self.done_at = done_at;
        self.l2_accesses = l2_accesses;
        self.l2_misses = l2_misses;
        self.measured_l2_accesses = measured_l2_accesses;
        self.measured_l2_misses = measured_l2_misses;
        Ok(())
    }
}

/// An event-interleaved CMP simulation of one mix under one scheme.
///
/// # Example
///
/// ```
/// use vantage_sim::{CmpSim, SchemeKind, SystemConfig};
/// use vantage_workloads::mixes;
///
/// let mut sys = SystemConfig::small_scale();
/// sys.instructions = 200_000; // keep the doctest quick
/// let mix = &mixes(4, 1, 7)[0];
/// let mut sim = CmpSim::new(sys, &SchemeKind::vantage_paper(), mix);
/// let result = sim.run();
/// assert!(result.throughput > 0.0);
/// assert_eq!(result.ipc.len(), 4);
/// ```
pub struct CmpSim {
    sys: SystemConfig,
    scheme: Scheme,
    label: String,
    cores: Vec<CoreState>,
    epoch: EpochController,
    mem_free: Vec<u64>,
    trace_interval: Option<u64>,
    next_trace: u64,
    trace: Vec<TraceSample>,
    /// References processed so far — the checkpoint clock.
    steps: u64,
    finished: bool,
}

impl CmpSim {
    /// Builds a simulation of `mix` on machine `sys` under scheme `kind`.
    ///
    /// # Panics
    ///
    /// Panics if the mix's application count does not match `sys.cores` or
    /// the configuration is invalid.
    pub fn new(sys: SystemConfig, kind: &SchemeKind, mix: &Mix) -> Self {
        sys.validate();
        assert_eq!(mix.apps.len(), sys.cores, "mix size must match core count");
        // The builder applies `sys.scrub_period` and banking in one place.
        let scheme = Scheme::builder(kind.clone(), sys.clone())
            .try_build()
            .expect("valid scheme config");
        // Policy selection, epoch scheduling and invariant auditing all
        // live in the controller; the loop below only feeds it.
        let epoch = EpochController::new(&sys, kind, &scheme);
        let cores = mix
            .apps
            .iter()
            .enumerate()
            .map(|(c, app)| CoreState {
                gen: Box::new(AppGen::new(
                    app.clone(),
                    (c as u64 + 1) << 44,
                    sys.seed ^ mix64(c as u64 + 0xABC),
                )) as Box<dyn RefStream + Send>,
                l1: L1::new(sys.l1_lines, sys.l1_ways),
                time: 0,
                instrs: 0,
                done_at: None,
                l2_accesses: 0,
                l2_misses: 0,
                measured_l2_accesses: 0,
                measured_l2_misses: 0,
            })
            .collect();
        let channels = sys.mem_channels;
        let mut label = if sys.banks > 1 {
            format!("{}-{}B", kind.label(), sys.banks)
        } else {
            kind.label()
        };
        if sys.policy != PolicyKind::Ucp && scheme.uses_ucp() {
            label = format!("{label}+{}", sys.policy.label());
        }
        Self {
            sys,
            scheme,
            label,
            cores,
            epoch,
            mem_free: vec![0; channels],
            trace_interval: None,
            next_trace: u64::MAX,
            trace: Vec::new(),
            steps: 0,
            finished: false,
        }
    }

    /// Builds a simulation driven by arbitrary reference sources (e.g.
    /// recorded traces via
    /// [`TraceGen`](vantage_workloads::TraceGen)) instead of the synthetic
    /// application models — one source per core.
    ///
    /// # Panics
    ///
    /// Panics if the source count does not match `sys.cores`.
    pub fn with_sources(
        sys: SystemConfig,
        kind: &SchemeKind,
        sources: Vec<Box<dyn RefStream + Send>>,
        label_suffix: &str,
    ) -> Self {
        use vantage_workloads::mixes;
        assert_eq!(sources.len(), sys.cores, "one source per core");
        // Build the machinery with a placeholder mix, then swap the cores'
        // generators for the provided sources.
        let mix = &mixes(sys.cores.div_ceil(4) * 4, 1, sys.seed)[0];
        let mut placeholder_mix = mix.clone();
        placeholder_mix.apps.truncate(sys.cores);
        while placeholder_mix.apps.len() < sys.cores {
            placeholder_mix.apps.push(mix.apps[0].clone());
        }
        let mut sim = Self::new(sys, kind, &placeholder_mix);
        for (core, src) in sim.cores.iter_mut().zip(sources) {
            core.gen = src;
        }
        sim.label = format!("{}{label_suffix}", sim.label);
        sim
    }

    /// Enables partition-size tracing every `interval` cycles (Fig. 8).
    pub fn enable_trace(&mut self, interval: u64) {
        assert!(interval > 0, "trace interval must be non-zero");
        self.trace_interval = Some(interval);
        self.next_trace = interval;
    }

    /// Enables demotion/eviction priority probing where the scheme
    /// supports it (Vantage-LRU, way-partitioning).
    pub fn enable_priority_probe(&mut self) {
        self.scheme.enable_priority_probe();
    }

    /// Direct access to the scheme under test.
    pub fn scheme(&self) -> &Scheme {
        &self.scheme
    }

    /// The epoch controller (policy identity, recovery counters).
    pub fn epoch(&self) -> &EpochController {
        &self.epoch
    }

    /// Attaches a fault-injection schedule to the LLC, polled on every
    /// access. Returns `false` when the scheme cannot host one (only
    /// unbanked Vantage can).
    pub fn set_fault_plan(&mut self, plan: vantage::FaultPlan) -> bool {
        match self.scheme.vantage_mut() {
            Some(v) => {
                v.set_fault_plan(Some(plan));
                true
            }
            None => false,
        }
    }

    /// The label stamped on results and artifacts: the scheme's label,
    /// plus a `+policy` tag when a non-default allocation policy drives it.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Installs a telemetry producer on the LLC under test.
    ///
    /// Returns `false` when the scheme does not support telemetry.
    pub fn set_telemetry(&mut self, telemetry: vantage_telemetry::Telemetry) -> bool {
        self.scheme.set_telemetry(telemetry)
    }

    /// Detaches the LLC's telemetry producer, flushing its sink.
    pub fn take_telemetry(&mut self) -> Option<vantage_telemetry::Telemetry> {
        self.scheme.take_telemetry()
    }

    fn take_trace_sample(&mut self, cycle: u64) {
        let n = self.cores.len();
        let targets = if self.epoch.targets().is_empty() {
            vec![(self.sys.l2_lines / n) as u64; n]
        } else {
            self.epoch.targets().to_vec()
        };
        let actuals = (0..n)
            .map(|p| self.scheme.llc().partition_size(PartitionId::from_index(p)))
            .collect();
        self.trace.push(TraceSample {
            cycle,
            targets,
            actuals,
        });
    }

    /// Runs the simulation to completion: every core executes at least its
    /// instruction quota (finished cores keep running to preserve
    /// contention, as in the paper's methodology).
    ///
    /// # Panics
    ///
    /// Panics on a [`SimError`] (fail-fast invariant violation); use
    /// [`CmpSim::try_run`] to handle it as data instead.
    pub fn run(&mut self) -> SimResult {
        match self.try_run() {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`CmpSim::run`] with typed errors instead of panics.
    ///
    /// # Errors
    ///
    /// [`SimError::Invariant`] when an epoch-boundary invariant check
    /// fails under `fail_fast_invariants`; without fail-fast, violations
    /// are repaired in place and counted in
    /// [`SimResult::invariant_recoveries`].
    pub fn try_run(&mut self) -> Result<SimResult, SimError> {
        let r = self.try_run_for(u64::MAX)?;
        Ok(r.expect("an unbounded run always completes"))
    }

    /// [`CmpSim::try_run_for`] with panics instead of typed errors.
    pub fn run_for(&mut self, budget: u64) -> Option<SimResult> {
        match self.try_run_for(budget) {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        }
    }

    /// Runs at most `budget` more references, pausing at a
    /// checkpoint-consistent boundary.
    ///
    /// Returns `Ok(None)` when paused before completion — the simulation
    /// can then be checkpointed ([`save_checkpoint`](Self::save_checkpoint))
    /// or simply continued with another call. Returns `Ok(Some(result))`
    /// once every core has met its quota. The pause/resume seams are
    /// exact: any interleaving of `try_run_for` calls produces the same
    /// final result as one uninterrupted [`try_run`](Self::try_run).
    ///
    /// # Errors
    ///
    /// As [`try_run`](Self::try_run).
    pub fn try_run_for(&mut self, budget: u64) -> Result<Option<SimResult>, SimError> {
        let quota = self.sys.instructions;
        if !self.finished {
            // The event heap is rebuilt from core times on entry: between
            // references its contents are exactly {(core.time, c)}, and the
            // (time, core) tuples are distinct, so pop order — hence the
            // whole run — is identical however the heap was materialized.
            let mut heap: BinaryHeap<Reverse<(u64, usize)>> = self
                .cores
                .iter()
                .enumerate()
                .map(|(c, core)| Reverse((core.time, c)))
                .collect();
            let mut remaining = self.cores.iter().filter(|c| c.done_at.is_none()).count();
            let mut left = budget;

            while remaining > 0 {
                if left == 0 {
                    return Ok(None);
                }
                left -= 1;
                self.steps += 1;
                let Reverse((now, c)) = heap.pop().expect("cores remain");

                // Global-time-ordered bookkeeping (the popped time is the
                // minimum over all cores).
                while now >= self.epoch.next_at() {
                    self.epoch.run_epoch(&mut self.scheme)?;
                }
                if now >= self.next_trace {
                    self.take_trace_sample(now);
                    self.next_trace += self.trace_interval.expect("tracing enabled");
                }

                let core = &mut self.cores[c];
                let r = core.gen.next_ref();
                core.time = now + u64::from(r.gap);
                core.instrs += u64::from(r.gap);

                if !core.l1.access(r.addr) {
                    core.l2_accesses += 1;
                    self.epoch.observe(c, r.addr);
                    let outcome = self
                        .scheme
                        .llc_mut()
                        .access(AccessRequest::read(PartitionId::from_index(c), r.addr));
                    if outcome.is_hit() {
                        core.time += self.sys.l2_latency;
                    } else {
                        core.l2_misses += 1;
                        // Bandwidth model: the line occupies one memory channel
                        // for a fixed service time; contention queues behind it.
                        let ch = (mix64(r.addr.0) % self.mem_free.len() as u64) as usize;
                        let start = self.mem_free[ch].max(core.time);
                        self.mem_free[ch] = start + self.sys.mem_cycles_per_line;
                        core.time = start + self.sys.mem_latency;
                    }
                }

                if core.done_at.is_none() && core.instrs >= quota {
                    core.done_at = Some(core.time);
                    core.measured_l2_accesses = core.l2_accesses;
                    core.measured_l2_misses = core.l2_misses;
                    remaining -= 1;
                    if remaining == 0 {
                        break;
                    }
                }
                heap.push(Reverse((core.time, c)));
            }
            self.finished = true;
        }

        let ipc: Vec<f64> = self
            .cores
            .iter()
            .map(|c| quota as f64 / c.done_at.expect("all cores finished") as f64)
            .collect();
        let mpki: Vec<f64> = self
            .cores
            .iter()
            .map(|c| c.measured_l2_misses as f64 * 1000.0 / quota as f64)
            .collect();
        Ok(Some(SimResult {
            label: self.label.clone(),
            throughput: ipc.iter().sum(),
            ipc,
            l2_accesses: self.cores.iter().map(|c| c.measured_l2_accesses).collect(),
            l2_misses: self.cores.iter().map(|c| c.measured_l2_misses).collect(),
            mpki,
            managed_eviction_fraction: self.scheme.managed_eviction_fraction(),
            invariant_recoveries: self.epoch.recoveries(),
            reconfig_rollbacks: self.epoch.reconfig_rollbacks(),
            trace: std::mem::take(&mut self.trace),
            priority_samples: self.scheme.drain_priority_samples(),
        }))
    }

    /// References processed so far — the clock periodic checkpointing
    /// counts in.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Whether every core has met its instruction quota.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Applies a guarded live reconfiguration — an allocation-policy
    /// hot-swap or QoS-contract change — transactionally; see
    /// [`EpochController::reconfigure`]. A failed swap rolls the
    /// controller back and is counted in
    /// [`SimResult::reconfig_rollbacks`].
    ///
    /// # Errors
    ///
    /// As [`EpochController::reconfigure`].
    pub fn reconfigure(&mut self, req: &Reconfig) -> Result<(), ReconfigError> {
        self.epoch.reconfigure(req, &mut self.scheme)
    }

    /// Serializes the complete simulation state — reference generators,
    /// L1s, core scheduling state, the epoch controller (policy monitors
    /// included), memory channels, accumulated trace samples, and the
    /// whole LLC — into a sectioned snapshot.
    pub fn write_checkpoint(&self) -> SnapshotWriter {
        let mut w = SnapshotWriter::new();
        w.add_with("sim/meta", |e| {
            e.put_u64(self.sys.cores as u64);
            e.put_u64(self.sys.l2_lines as u64);
            e.put_u64(self.sys.seed);
            e.put_u64(self.sys.instructions);
            e.put_u64(self.steps);
            e.put_bool(self.finished);
            e.put_bool(self.trace_interval.is_some());
            e.put_u64(self.next_trace);
            e.put_u64_slice(&self.mem_free);
            e.put_u64(self.trace.len() as u64);
            for s in &self.trace {
                e.put_u64(s.cycle);
                e.put_u64_slice(&s.targets);
                e.put_u64_slice(&s.actuals);
            }
        });
        w.add_with("sim/cores", |e| {
            e.put_u64(self.cores.len() as u64);
            for core in &self.cores {
                core.save_state(e);
            }
        });
        let mut e = Encoder::new();
        self.epoch.save_state(&mut e);
        w.add("sim/epoch", e);
        let mut e = Encoder::new();
        self.scheme.llc().save_state(&mut e);
        w.add("sim/llc", e);
        w
    }

    /// Writes a checkpoint to `path` atomically (temp file + fsync +
    /// rename): a crash mid-write leaves the previous checkpoint intact.
    ///
    /// # Errors
    ///
    /// [`vantage_snapshot::SnapshotError::Io`] on filesystem failure.
    pub fn save_checkpoint(&self, path: &Path) -> vantage_snapshot::Result<()> {
        self.write_checkpoint().write_atomic(path)
    }

    /// Restores a checkpoint into this simulation, which must have been
    /// built from the same [`SystemConfig`], scheme and mix that produced
    /// the save. Continuing afterwards is bit-identical to the run that
    /// was checkpointed.
    ///
    /// # Errors
    ///
    /// Any [`vantage_snapshot::SnapshotError`]: corrupt or truncated
    /// files are reported, never panicked on, and shape disagreements
    /// with this simulation surface as
    /// [`Mismatch`](vantage_snapshot::SnapshotError::Mismatch).
    pub fn restore_checkpoint(&mut self, r: &SnapshotReader) -> vantage_snapshot::Result<()> {
        let mut dec = r.section("sim/meta")?;
        if dec.take_u64()? != self.sys.cores as u64 {
            return Err(dec.mismatch("core count differs"));
        }
        if dec.take_u64()? != self.sys.l2_lines as u64 {
            return Err(dec.mismatch("L2 capacity differs"));
        }
        if dec.take_u64()? != self.sys.seed {
            return Err(dec.mismatch("seed differs"));
        }
        if dec.take_u64()? != self.sys.instructions {
            return Err(dec.mismatch("instruction quota differs"));
        }
        let steps = dec.take_u64()?;
        let finished = dec.take_bool()?;
        if dec.take_bool()? != self.trace_interval.is_some() {
            return Err(dec.mismatch("partition-size tracing differs"));
        }
        let next_trace = dec.take_u64()?;
        if self.trace_interval.is_none() && next_trace != u64::MAX {
            return Err(dec.invalid("trace clock armed without tracing"));
        }
        let mem_free = dec.take_u64_vec()?;
        if mem_free.len() != self.mem_free.len() {
            return Err(dec.mismatch("memory channel count differs"));
        }
        let ntrace = dec.take_u64()? as usize;
        // Each sample is at least cycle + two length prefixes: 24 bytes.
        if ntrace > dec.remaining() / 24 {
            return Err(dec.invalid("trace sample count exceeds payload"));
        }
        let mut trace = Vec::with_capacity(ntrace);
        for _ in 0..ntrace {
            let cycle = dec.take_u64()?;
            let targets = dec.take_u64_vec()?;
            let actuals = dec.take_u64_vec()?;
            if targets.len() != self.cores.len() || actuals.len() != self.cores.len() {
                return Err(dec.invalid("trace sample shape differs from core count"));
            }
            trace.push(TraceSample {
                cycle,
                targets,
                actuals,
            });
        }
        dec.finish()?;

        let mut cdec = r.section("sim/cores")?;
        if cdec.take_u64()? != self.cores.len() as u64 {
            return Err(cdec.mismatch("core count differs"));
        }
        for core in &mut self.cores {
            core.load_state(&mut cdec)?;
        }
        cdec.finish()?;

        r.restore("sim/epoch", &mut self.epoch)?;

        let mut ldec = r.section("sim/llc")?;
        self.scheme.llc_mut().load_state(&mut ldec)?;
        ldec.finish()?;

        self.steps = steps;
        self.finished = finished;
        self.next_trace = next_trace;
        self.mem_free = mem_free;
        self.trace = trace;
        Ok(())
    }
}

/// Convenience: runs a single-core application alone on the machine (used
/// by the Table 3 classification experiment).
pub fn run_solo(
    sys: &SystemConfig,
    kind: &SchemeKind,
    app: &vantage_workloads::AppSpec,
) -> SimResult {
    let mut sys = sys.clone();
    sys.cores = 1;
    let mix = Mix {
        name: format!("solo-{}", app.name),
        class: [app.category; 4],
        apps: vec![app.clone()],
    };
    CmpSim::new(sys, kind, &mix).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ArrayKind, BaselineRank};
    use vantage_workloads::mixes;

    fn quick_sys() -> SystemConfig {
        let mut s = SystemConfig::small_scale();
        s.instructions = 300_000;
        s.repartition_interval = 50_000;
        s
    }

    #[test]
    fn baseline_and_vantage_complete() {
        let mix = &mixes(4, 1, 11)[17]; // some mid-catalog class
        for kind in [
            SchemeKind::Baseline {
                array: ArrayKind::SetAssoc { ways: 16 },
                rank: BaselineRank::Lru,
            },
            SchemeKind::vantage_paper(),
        ] {
            let r = CmpSim::new(quick_sys(), &kind, mix).run();
            assert_eq!(r.ipc.len(), 4);
            assert!(
                r.throughput > 0.0 && r.throughput <= 4.0,
                "{}: {}",
                r.label,
                r.throughput
            );
            assert!(r.ipc.iter().all(|&x| x > 0.0 && x <= 1.0));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mix = &mixes(4, 1, 3)[8];
        let kind = SchemeKind::vantage_paper();
        let a = CmpSim::new(quick_sys(), &kind, mix).run();
        let b = CmpSim::new(quick_sys(), &kind, mix).run();
        assert_eq!(a.ipc, b.ipc);
        assert_eq!(a.l2_misses, b.l2_misses);
    }

    #[test]
    fn streaming_core_has_high_mpki() {
        // Class "ssss" is index 0 in class order? Find a mix with a
        // streaming app in slot 0 ("s" first in name order).
        let all = mixes(4, 1, 5);
        let mix = all
            .iter()
            .find(|m| m.name.starts_with("sn"))
            .unwrap_or(&all[0]);
        let kind = SchemeKind::Baseline {
            array: ArrayKind::SetAssoc { ways: 16 },
            rank: BaselineRank::Lru,
        };
        let r = CmpSim::new(quick_sys(), &kind, mix).run();
        assert!(r.mpki[0] > 5.0, "streaming app mpki {}", r.mpki[0]);
    }

    #[test]
    fn trace_and_probe_collect_samples() {
        let mix = &mixes(4, 1, 7)[30];
        let mut sim = CmpSim::new(quick_sys(), &SchemeKind::vantage_paper(), mix);
        sim.enable_trace(20_000);
        sim.enable_priority_probe();
        let r = sim.run();
        assert!(!r.trace.is_empty(), "no trace samples");
        for s in &r.trace {
            assert_eq!(s.targets.len(), 4);
            assert_eq!(s.actuals.len(), 4);
        }
        assert!(r.managed_eviction_fraction.is_some());
    }

    #[test]
    fn trace_replay_reproduces_the_live_run() {
        // Record each core's reference stream, then drive the same machine
        // from the recorded traces: identical results.
        use vantage_workloads::{AppGen, TraceGen};
        let sys = quick_sys();
        let mix = &mixes(4, 1, 13)[22];
        let live = CmpSim::new(sys.clone(), &SchemeKind::vantage_paper(), mix).run();

        let sources: Vec<Box<dyn vantage_workloads::RefStream + Send>> = mix
            .apps
            .iter()
            .enumerate()
            .map(|(c, app)| {
                let mut gen = AppGen::new(
                    app.clone(),
                    (c as u64 + 1) << 44,
                    sys.seed ^ vantage_cache::hash::mix64(c as u64 + 0xABC),
                );
                // Enough records that no core wraps within its quota.
                Box::new(TraceGen::record(&mut gen, 500_000))
                    as Box<dyn vantage_workloads::RefStream + Send>
            })
            .collect();
        let replayed =
            CmpSim::with_sources(sys, &SchemeKind::vantage_paper(), sources, " (trace)").run();
        assert_eq!(live.ipc, replayed.ipc);
        assert_eq!(live.l2_misses, replayed.l2_misses);
        assert!(replayed.label.ends_with("(trace)"));
    }

    #[test]
    fn invariant_checking_and_scrubbing_run_clean() {
        // With the debug checker on, a healthy run must pass every
        // repartitioning-boundary invariant scan; with periodic scrubbing
        // on, the scrubber must actually fire (and find nothing to fix).
        let mut sys = quick_sys();
        sys.check_invariants = true;
        sys.scrub_period = Some(10_000);
        let mix = &mixes(4, 1, 7)[0];
        let mut sim = CmpSim::new(sys, &SchemeKind::vantage_paper(), mix);
        let r = sim.run();
        assert!(r.throughput > 0.0);
        assert_eq!(r.invariant_recoveries, 0, "healthy run needed repairs");
        let inv = sim.scheme().has_invariants().expect("vantage scheme");
        assert!(inv.scrubs() > 0, "periodic scrub never ran");
        assert_eq!(inv.corruption_fallbacks(), 0);
    }

    #[test]
    fn solo_run_classifies_streaming_as_high_mpki() {
        let sys = quick_sys();
        let app = vantage_workloads::spec_by_name("libquantum_like").expect("in catalog");
        let kind = SchemeKind::Baseline {
            array: ArrayKind::SetAssoc { ways: 16 },
            rank: BaselineRank::Lru,
        };
        let r = run_solo(&sys, &kind, &app);
        assert!(r.mpki[0] > 10.0, "solo stream mpki {}", r.mpki[0]);

        let quiet = vantage_workloads::spec_by_name("povray_like").expect("in catalog");
        let r = run_solo(&sys, &kind, &quiet);
        assert!(r.mpki[0] < 5.0, "insensitive solo mpki {}", r.mpki[0]);
    }
}
