//! The multicore simulation loop.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use vantage_cache::hash::mix64;
use vantage_partitioning::AccessRequest;
use vantage_workloads::{AppGen, Mix, RefStream};

use crate::config::{PolicyKind, SchemeKind, SystemConfig};
use crate::epoch::{EpochController, SimError};
use crate::l1::L1;
use crate::scheme::Scheme;

/// One sample of the partition-size time series (Fig. 8).
#[derive(Clone, Debug)]
pub struct TraceSample {
    /// Global cycle of the sample.
    pub cycle: u64,
    /// UCP targets in effect (lines of total cache).
    pub targets: Vec<u64>,
    /// Actual partition sizes (lines).
    pub actuals: Vec<u64>,
}

/// Results of one simulation.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Scheme label (e.g. `Vantage-Z4/52`).
    pub label: String,
    /// Per-core IPC over each core's measured instruction quota.
    pub ipc: Vec<f64>,
    /// Aggregate throughput `Σ IPC` — the paper's headline metric.
    pub throughput: f64,
    /// L2 accesses per core within the measured window.
    pub l2_accesses: Vec<u64>,
    /// L2 misses per core within the measured window.
    pub l2_misses: Vec<u64>,
    /// L2 misses per kilo-instruction per core.
    pub mpki: Vec<f64>,
    /// Fraction of evictions forced from the managed region (Vantage only).
    pub managed_eviction_fraction: Option<f64>,
    /// Invariant violations found at epoch boundaries and absorbed by an
    /// in-place repair (always 0 unless `check_invariants` is set).
    pub invariant_recoveries: u64,
    /// Partition-size samples (when tracing was enabled).
    pub trace: Vec<TraceSample>,
    /// Demotion/eviction priority samples (when the probe was enabled).
    pub priority_samples: Vec<(u64, u16, f32)>,
}

struct CoreState {
    gen: Box<dyn RefStream + Send>,
    l1: L1,
    time: u64,
    instrs: u64,
    done_at: Option<u64>,
    l2_accesses: u64,
    l2_misses: u64,
    measured_l2_accesses: u64,
    measured_l2_misses: u64,
}

/// An event-interleaved CMP simulation of one mix under one scheme.
///
/// # Example
///
/// ```
/// use vantage_sim::{CmpSim, SchemeKind, SystemConfig};
/// use vantage_workloads::mixes;
///
/// let mut sys = SystemConfig::small_scale();
/// sys.instructions = 200_000; // keep the doctest quick
/// let mix = &mixes(4, 1, 7)[0];
/// let mut sim = CmpSim::new(sys, &SchemeKind::vantage_paper(), mix);
/// let result = sim.run();
/// assert!(result.throughput > 0.0);
/// assert_eq!(result.ipc.len(), 4);
/// ```
pub struct CmpSim {
    sys: SystemConfig,
    scheme: Scheme,
    label: String,
    cores: Vec<CoreState>,
    epoch: EpochController,
    mem_free: Vec<u64>,
    trace_interval: Option<u64>,
    trace: Vec<TraceSample>,
}

impl CmpSim {
    /// Builds a simulation of `mix` on machine `sys` under scheme `kind`.
    ///
    /// # Panics
    ///
    /// Panics if the mix's application count does not match `sys.cores` or
    /// the configuration is invalid.
    pub fn new(sys: SystemConfig, kind: &SchemeKind, mix: &Mix) -> Self {
        sys.validate();
        assert_eq!(mix.apps.len(), sys.cores, "mix size must match core count");
        // The builder applies `sys.scrub_period` and banking in one place.
        let scheme = Scheme::builder(kind.clone(), sys.clone()).build();
        // Policy selection, epoch scheduling and invariant auditing all
        // live in the controller; the loop below only feeds it.
        let epoch = EpochController::new(&sys, kind, &scheme);
        let cores = mix
            .apps
            .iter()
            .enumerate()
            .map(|(c, app)| CoreState {
                gen: Box::new(AppGen::new(
                    app.clone(),
                    (c as u64 + 1) << 44,
                    sys.seed ^ mix64(c as u64 + 0xABC),
                )) as Box<dyn RefStream + Send>,
                l1: L1::new(sys.l1_lines, sys.l1_ways),
                time: 0,
                instrs: 0,
                done_at: None,
                l2_accesses: 0,
                l2_misses: 0,
                measured_l2_accesses: 0,
                measured_l2_misses: 0,
            })
            .collect();
        let channels = sys.mem_channels;
        let mut label = if sys.banks > 1 {
            format!("{}-{}B", kind.label(), sys.banks)
        } else {
            kind.label()
        };
        if sys.policy != PolicyKind::Ucp && scheme.uses_ucp() {
            label = format!("{label}+{}", sys.policy.label());
        }
        Self {
            sys,
            scheme,
            label,
            cores,
            epoch,
            mem_free: vec![0; channels],
            trace_interval: None,
            trace: Vec::new(),
        }
    }

    /// Builds a simulation driven by arbitrary reference sources (e.g.
    /// recorded traces via
    /// [`TraceGen`](vantage_workloads::TraceGen)) instead of the synthetic
    /// application models — one source per core.
    ///
    /// # Panics
    ///
    /// Panics if the source count does not match `sys.cores`.
    pub fn with_sources(
        sys: SystemConfig,
        kind: &SchemeKind,
        sources: Vec<Box<dyn RefStream + Send>>,
        label_suffix: &str,
    ) -> Self {
        use vantage_workloads::mixes;
        assert_eq!(sources.len(), sys.cores, "one source per core");
        // Build the machinery with a placeholder mix, then swap the cores'
        // generators for the provided sources.
        let mix = &mixes(sys.cores.div_ceil(4) * 4, 1, sys.seed)[0];
        let mut placeholder_mix = mix.clone();
        placeholder_mix.apps.truncate(sys.cores);
        while placeholder_mix.apps.len() < sys.cores {
            placeholder_mix.apps.push(mix.apps[0].clone());
        }
        let mut sim = Self::new(sys, kind, &placeholder_mix);
        for (core, src) in sim.cores.iter_mut().zip(sources) {
            core.gen = src;
        }
        sim.label = format!("{}{label_suffix}", sim.label);
        sim
    }

    /// Enables partition-size tracing every `interval` cycles (Fig. 8).
    pub fn enable_trace(&mut self, interval: u64) {
        assert!(interval > 0, "trace interval must be non-zero");
        self.trace_interval = Some(interval);
    }

    /// Enables demotion/eviction priority probing where the scheme
    /// supports it (Vantage-LRU, way-partitioning).
    pub fn enable_priority_probe(&mut self) {
        self.scheme.enable_priority_probe();
    }

    /// Direct access to the scheme under test.
    pub fn scheme(&self) -> &Scheme {
        &self.scheme
    }

    /// The label stamped on results and artifacts: the scheme's label,
    /// plus a `+policy` tag when a non-default allocation policy drives it.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Installs a telemetry producer on the LLC under test.
    ///
    /// Returns `false` when the scheme does not support telemetry.
    pub fn set_telemetry(&mut self, telemetry: vantage_telemetry::Telemetry) -> bool {
        self.scheme.set_telemetry(telemetry)
    }

    /// Detaches the LLC's telemetry producer, flushing its sink.
    pub fn take_telemetry(&mut self) -> Option<vantage_telemetry::Telemetry> {
        self.scheme.take_telemetry()
    }

    fn take_trace_sample(&mut self, cycle: u64) {
        let n = self.cores.len();
        let targets = if self.epoch.targets().is_empty() {
            vec![(self.sys.l2_lines / n) as u64; n]
        } else {
            self.epoch.targets().to_vec()
        };
        let actuals = (0..n)
            .map(|p| self.scheme.llc().partition_size(p))
            .collect();
        self.trace.push(TraceSample {
            cycle,
            targets,
            actuals,
        });
    }

    /// Runs the simulation to completion: every core executes at least its
    /// instruction quota (finished cores keep running to preserve
    /// contention, as in the paper's methodology).
    ///
    /// # Panics
    ///
    /// Panics on a [`SimError`] (fail-fast invariant violation); use
    /// [`CmpSim::try_run`] to handle it as data instead.
    pub fn run(&mut self) -> SimResult {
        match self.try_run() {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`CmpSim::run`] with typed errors instead of panics.
    ///
    /// # Errors
    ///
    /// [`SimError::Invariant`] when an epoch-boundary invariant check
    /// fails under `fail_fast_invariants`; without fail-fast, violations
    /// are repaired in place and counted in
    /// [`SimResult::invariant_recoveries`].
    pub fn try_run(&mut self) -> Result<SimResult, SimError> {
        let quota = self.sys.instructions;
        let mut heap: BinaryHeap<Reverse<(u64, usize)>> =
            (0..self.cores.len()).map(|c| Reverse((0u64, c))).collect();
        let mut remaining = self.cores.len();
        let mut next_trace = self.trace_interval.unwrap_or(u64::MAX);

        while remaining > 0 {
            let Reverse((now, c)) = heap.pop().expect("cores remain");

            // Global-time-ordered bookkeeping (the popped time is the
            // minimum over all cores).
            while now >= self.epoch.next_at() {
                self.epoch.run_epoch(&mut self.scheme)?;
            }
            if now >= next_trace {
                self.take_trace_sample(now);
                next_trace += self.trace_interval.expect("tracing enabled");
            }

            let core = &mut self.cores[c];
            let r = core.gen.next_ref();
            core.time = now + u64::from(r.gap);
            core.instrs += u64::from(r.gap);

            if !core.l1.access(r.addr) {
                core.l2_accesses += 1;
                self.epoch.observe(c, r.addr);
                let outcome = self.scheme.llc_mut().access(AccessRequest::read(c, r.addr));
                if outcome.is_hit() {
                    core.time += self.sys.l2_latency;
                } else {
                    core.l2_misses += 1;
                    // Bandwidth model: the line occupies one memory channel
                    // for a fixed service time; contention queues behind it.
                    let ch = (mix64(r.addr.0) % self.mem_free.len() as u64) as usize;
                    let start = self.mem_free[ch].max(core.time);
                    self.mem_free[ch] = start + self.sys.mem_cycles_per_line;
                    core.time = start + self.sys.mem_latency;
                }
            }

            if core.done_at.is_none() && core.instrs >= quota {
                core.done_at = Some(core.time);
                core.measured_l2_accesses = core.l2_accesses;
                core.measured_l2_misses = core.l2_misses;
                remaining -= 1;
                if remaining == 0 {
                    break;
                }
            }
            heap.push(Reverse((core.time, c)));
        }

        let ipc: Vec<f64> = self
            .cores
            .iter()
            .map(|c| quota as f64 / c.done_at.expect("all cores finished") as f64)
            .collect();
        let mpki: Vec<f64> = self
            .cores
            .iter()
            .map(|c| c.measured_l2_misses as f64 * 1000.0 / quota as f64)
            .collect();
        Ok(SimResult {
            label: self.label.clone(),
            throughput: ipc.iter().sum(),
            ipc,
            l2_accesses: self.cores.iter().map(|c| c.measured_l2_accesses).collect(),
            l2_misses: self.cores.iter().map(|c| c.measured_l2_misses).collect(),
            mpki,
            managed_eviction_fraction: self.scheme.managed_eviction_fraction(),
            invariant_recoveries: self.epoch.recoveries(),
            trace: std::mem::take(&mut self.trace),
            priority_samples: self.scheme.drain_priority_samples(),
        })
    }
}

/// Convenience: runs a single-core application alone on the machine (used
/// by the Table 3 classification experiment).
pub fn run_solo(
    sys: &SystemConfig,
    kind: &SchemeKind,
    app: &vantage_workloads::AppSpec,
) -> SimResult {
    let mut sys = sys.clone();
    sys.cores = 1;
    let mix = Mix {
        name: format!("solo-{}", app.name),
        class: [app.category; 4],
        apps: vec![app.clone()],
    };
    CmpSim::new(sys, kind, &mix).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ArrayKind, BaselineRank};
    use vantage_workloads::mixes;

    fn quick_sys() -> SystemConfig {
        let mut s = SystemConfig::small_scale();
        s.instructions = 300_000;
        s.repartition_interval = 50_000;
        s
    }

    #[test]
    fn baseline_and_vantage_complete() {
        let mix = &mixes(4, 1, 11)[17]; // some mid-catalog class
        for kind in [
            SchemeKind::Baseline {
                array: ArrayKind::SetAssoc { ways: 16 },
                rank: BaselineRank::Lru,
            },
            SchemeKind::vantage_paper(),
        ] {
            let r = CmpSim::new(quick_sys(), &kind, mix).run();
            assert_eq!(r.ipc.len(), 4);
            assert!(
                r.throughput > 0.0 && r.throughput <= 4.0,
                "{}: {}",
                r.label,
                r.throughput
            );
            assert!(r.ipc.iter().all(|&x| x > 0.0 && x <= 1.0));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mix = &mixes(4, 1, 3)[8];
        let kind = SchemeKind::vantage_paper();
        let a = CmpSim::new(quick_sys(), &kind, mix).run();
        let b = CmpSim::new(quick_sys(), &kind, mix).run();
        assert_eq!(a.ipc, b.ipc);
        assert_eq!(a.l2_misses, b.l2_misses);
    }

    #[test]
    fn streaming_core_has_high_mpki() {
        // Class "ssss" is index 0 in class order? Find a mix with a
        // streaming app in slot 0 ("s" first in name order).
        let all = mixes(4, 1, 5);
        let mix = all
            .iter()
            .find(|m| m.name.starts_with("sn"))
            .unwrap_or(&all[0]);
        let kind = SchemeKind::Baseline {
            array: ArrayKind::SetAssoc { ways: 16 },
            rank: BaselineRank::Lru,
        };
        let r = CmpSim::new(quick_sys(), &kind, mix).run();
        assert!(r.mpki[0] > 5.0, "streaming app mpki {}", r.mpki[0]);
    }

    #[test]
    fn trace_and_probe_collect_samples() {
        let mix = &mixes(4, 1, 7)[30];
        let mut sim = CmpSim::new(quick_sys(), &SchemeKind::vantage_paper(), mix);
        sim.enable_trace(20_000);
        sim.enable_priority_probe();
        let r = sim.run();
        assert!(!r.trace.is_empty(), "no trace samples");
        for s in &r.trace {
            assert_eq!(s.targets.len(), 4);
            assert_eq!(s.actuals.len(), 4);
        }
        assert!(r.managed_eviction_fraction.is_some());
    }

    #[test]
    fn trace_replay_reproduces_the_live_run() {
        // Record each core's reference stream, then drive the same machine
        // from the recorded traces: identical results.
        use vantage_workloads::{AppGen, TraceGen};
        let sys = quick_sys();
        let mix = &mixes(4, 1, 13)[22];
        let live = CmpSim::new(sys.clone(), &SchemeKind::vantage_paper(), mix).run();

        let sources: Vec<Box<dyn vantage_workloads::RefStream + Send>> = mix
            .apps
            .iter()
            .enumerate()
            .map(|(c, app)| {
                let mut gen = AppGen::new(
                    app.clone(),
                    (c as u64 + 1) << 44,
                    sys.seed ^ vantage_cache::hash::mix64(c as u64 + 0xABC),
                );
                // Enough records that no core wraps within its quota.
                Box::new(TraceGen::record(&mut gen, 500_000))
                    as Box<dyn vantage_workloads::RefStream + Send>
            })
            .collect();
        let replayed =
            CmpSim::with_sources(sys, &SchemeKind::vantage_paper(), sources, " (trace)").run();
        assert_eq!(live.ipc, replayed.ipc);
        assert_eq!(live.l2_misses, replayed.l2_misses);
        assert!(replayed.label.ends_with("(trace)"));
    }

    #[test]
    fn invariant_checking_and_scrubbing_run_clean() {
        // With the debug checker on, a healthy run must pass every
        // repartitioning-boundary invariant scan; with periodic scrubbing
        // on, the scrubber must actually fire (and find nothing to fix).
        let mut sys = quick_sys();
        sys.check_invariants = true;
        sys.scrub_period = Some(10_000);
        let mix = &mixes(4, 1, 7)[0];
        let mut sim = CmpSim::new(sys, &SchemeKind::vantage_paper(), mix);
        let r = sim.run();
        assert!(r.throughput > 0.0);
        assert_eq!(r.invariant_recoveries, 0, "healthy run needed repairs");
        let inv = sim.scheme().has_invariants().expect("vantage scheme");
        assert!(inv.scrubs() > 0, "periodic scrub never ran");
        assert_eq!(inv.corruption_fallbacks(), 0);
    }

    #[test]
    fn solo_run_classifies_streaming_as_high_mpki() {
        let sys = quick_sys();
        let app = vantage_workloads::spec_by_name("libquantum_like").expect("in catalog");
        let kind = SchemeKind::Baseline {
            array: ArrayKind::SetAssoc { ways: 16 },
            rank: BaselineRank::Lru,
        };
        let r = run_solo(&sys, &kind, &app);
        assert!(r.mpki[0] > 10.0, "solo stream mpki {}", r.mpki[0]);

        let quiet = vantage_workloads::spec_by_name("povray_like").expect("in catalog");
        let r = run_solo(&sys, &kind, &quiet);
        assert!(r.mpki[0] < 5.0, "insensitive solo mpki {}", r.mpki[0]);
    }
}
