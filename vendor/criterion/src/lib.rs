//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no network access, so the workspace patches
//! `criterion` with this minimal harness. It runs each benchmark a small,
//! fixed number of iterations and prints mean wall-clock time per
//! iteration — enough to compare orders of magnitude and to keep the bench
//! targets compiling and runnable, without statistical analysis, warm-up
//! calibration or HTML reports.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::Instant;

/// Measures one benchmark body.
pub struct Bencher {
    iters: u32,
    /// Mean nanoseconds per iteration of the last `iter` call.
    last_ns: f64,
}

impl Bencher {
    /// Times `body` over a fixed number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // One untimed pass to touch caches.
        std::hint::black_box(body());
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(body());
        }
        self.last_ns = start.elapsed().as_nanos() as f64 / f64::from(self.iters);
    }
}

/// Identifies a benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An ID rendered from a parameter value.
    pub fn from_parameter<P: Display>(p: P) -> Self {
        Self { id: p.to_string() }
    }

    /// An ID with a function name and a parameter.
    pub fn new<S: Into<String>, P: Display>(function: S, p: P) -> Self {
        Self {
            id: format!("{}/{}", function.into(), p),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: u32,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark iteration count (criterion's sample size is
    /// reused directly as the iteration count here).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u32).max(1);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut body: F) {
        let mut b = Bencher {
            iters: self.sample_size.min(self.criterion.max_iters),
            last_ns: 0.0,
        };
        body(&mut b);
        println!("bench {}/{id}: {:.0} ns/iter", self.name, b.last_ns);
    }

    /// Runs a named benchmark.
    pub fn bench_function<S: Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        body: F,
    ) -> &mut Self {
        self.run_one(&id.to_string(), body);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut body: F,
    ) -> &mut Self {
        self.run_one(&id.to_string(), |b| body(b, input));
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    max_iters: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep stand-in runs fast even where real criterion would sample
        // hundreds of times.
        Self { max_iters: 10 }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Runs a standalone named benchmark.
    pub fn bench_function<S: Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        body: F,
    ) -> &mut Self {
        let name = id.to_string();
        let mut g = self.benchmark_group("default");
        g.bench_function(name, body);
        self
    }
}

/// Re-export for code that uses `criterion::black_box`.
pub use std::hint::black_box;

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` for a set of benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(5);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::from_parameter("param"), &3u64, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
