//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no network access and no
//! vendored registry, so the workspace patches `rand` with this minimal
//! implementation of exactly the API surface the workspace uses:
//!
//! * [`rngs::SmallRng`] — xoshiro256++, seeded the same way rand 0.8 seeds
//!   it (PCG32 expansion of the `u64` seed), so seeded streams match the
//!   real crate on 64-bit platforms;
//! * the [`RngCore`], [`SeedableRng`] and [`Rng`] traits with `gen`,
//!   `gen_range` and `gen_bool`.
//!
//! Distributions use standard constructions: 53-bit mantissa floats and
//! widening-multiply uniform integers. This is a deterministic simulation
//! workspace — statistical quality matters, cryptographic quality does not.

#![forbid(unsafe_code)]

use core::ops::Range;

/// Core random-number generation: raw output blocks.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Seed material (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with PCG32 exactly
    /// as `rand_core` 0.6 does (so seeded streams match the real crate).
    fn seed_from_u64(mut state: u64) -> Self {
        fn pcg32(state: &mut u64) -> [u8; 4] {
            const MUL: u64 = 6364136223846793005;
            const INC: u64 = 11634580027462260723;
            *state = state.wrapping_mul(MUL).wrapping_add(INC);
            let s = *state;
            let xorshifted = (((s >> 18) ^ s) >> 27) as u32;
            let rot = (s >> 59) as u32;
            xorshifted.rotate_right(rot).to_le_bytes()
        }
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            let block = pcg32(&mut state);
            let n = chunk.len();
            chunk.copy_from_slice(&block[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable from the "standard" distribution of [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}

impl Standard for u16 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types with a uniform-over-a-range sampler (the bound behind
/// [`Rng::gen_range`]; a single blanket `SampleRange` impl over this trait
/// keeps float-literal type fallback working, as in the real crate).
pub trait SampleUniform: Sized {
    /// Draws one value uniformly from `[start, end)`.
    fn sample_uniform<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self;
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(self.start, self.end, rng)
    }
}

/// Widening-multiply uniform integer in `[0, span)`; `span > 0`.
#[inline]
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_uniform<R: RngCore + ?Sized>(start: $t, end: $t, rng: &mut R) -> $t {
                assert!(start < end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64);
                start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_int_uniform!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_uniform<R: RngCore + ?Sized>(start: $t, end: $t, rng: &mut R) -> $t {
                assert!(start < end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u64;
                (start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_signed_uniform!(i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_uniform<R: RngCore + ?Sized>(start: f64, end: f64, rng: &mut R) -> f64 {
        assert!(start < end, "cannot sample empty range");
        start + (end - start) * f64::sample_standard(rng)
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample_uniform<R: RngCore + ?Sized>(start: f32, end: f32, rng: &mut R) -> f32 {
        assert!(start < end, "cannot sample empty range");
        start + (end - start) * f32::sample_standard(rng)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        f64::sample_standard(self) < p
    }

    /// Draws `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(
            numerator <= denominator && denominator > 0,
            "gen_ratio needs 0 <= numerator <= denominator and denominator > 0"
        );
        self.gen_range(0..denominator) < numerator
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The small fast generator: xoshiro256++ (what rand 0.8's `SmallRng`
    /// is on 64-bit platforms).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SmallRng {
        /// The raw xoshiro256++ state, for checkpoint/restore.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a captured [`state`](Self::state).
        /// An all-zero state is a fixed point of the generator, so it is
        /// nudged exactly as [`SeedableRng::from_seed`] does.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                let mut seed = [0u8; 32];
                seed.fill(0);
                return Self::from_seed(seed);
            }
            Self { s }
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s == [0; 4] {
                // All-zero state is a fixed point; nudge it as rand does.
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            Self { s }
        }
    }

    /// Alias kept so code written against `StdRng` still compiles; the
    /// stand-in does not provide a cryptographic generator.
    pub type StdRng = SmallRng;
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_distinct_by_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn seeded_stream_is_stable() {
        // Pinned first outputs of `seed_from_u64(0)` (xoshiro256++ seeded
        // via PCG32 expansion, the construction rand 0.8 uses on 64-bit
        // targets). Guards against accidental changes to the stream:
        // simulation results across the workspace are derived from it.
        let mut r = SmallRng::seed_from_u64(0);
        assert_eq!(r.gen::<u64>(), 8251690495967107212);
        let pinned: [u64; 2] = [r.gen(), r.gen()];
        let mut again = SmallRng::seed_from_u64(0);
        again.gen::<u64>();
        assert_eq!([again.gen::<u64>(), again.gen::<u64>()], pinned);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&y));
            let f = r.gen_range(0.5f64..1.5);
            assert!((0.5..1.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "gen_bool(0.25) -> {frac}");
    }

    #[test]
    fn uniform_int_is_roughly_uniform() {
        let mut r = SmallRng::seed_from_u64(5);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[r.gen_range(0usize..10)] += 1;
        }
        for &b in &buckets {
            assert!((8_000..12_000).contains(&b), "bucket {b}");
        }
    }
}
