//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no network access, so the workspace patches
//! `proptest` with this minimal random-testing harness covering the API the
//! workspace's property tests use: the [`proptest!`] macro, range and tuple
//! strategies, `prop::collection::vec`, [`ProptestConfig`] and the
//! `prop_assert*` macros.
//!
//! Unlike real proptest there is no shrinking: a failing case reports its
//! case number and seed so it can be reproduced (cases are deterministic
//! per test name), which is enough for a CI gate.

#![forbid(unsafe_code)]

use core::ops::Range;

/// Deterministic generator used to sample strategy values (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, span)`.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }

    /// A uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Something that can produce random values for a test case.
pub trait Strategy {
    /// The value type produced.
    type Value;
    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Length specification for [`prop::collection::vec`]: a fixed size or a
/// half-open range of sizes.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Strategy producing vectors of values from an element strategy.
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo
            + if span > 0 {
                rng.below(span) as usize
            } else {
                0
            };
        (0..len).map(|_| self.elem.sample(rng)).collect()
    }
}

/// The `prop::` namespace mirroring real proptest's module layout.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, VecStrategy};

        /// A strategy for vectors whose elements come from `elem` and whose
        /// length comes from `size` (a `usize` or `Range<usize>`).
        pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                elem,
                size: size.into(),
            }
        }
    }
}

/// Per-block configuration accepted via `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Runs `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// FNV-1a over the test name: gives each test its own seed stream.
pub fn name_seed(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    h
}

/// Asserts a condition inside a `proptest!` body, failing the case with a
/// message instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err(format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(l == r) {
            return ::core::result::Result::Err(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($lhs), stringify!($rhs), l, r
            ));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(l == r) {
            return ::core::result::Result::Err(format!($($fmt)*));
        }
    }};
}

/// Declares property tests: each function samples its arguments from the
/// given strategies and runs the body for `cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns ($cfg); $($rest)*);
    };
    (@fns ($cfg:expr); ) => {};
    (@fns ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let base =
                $crate::name_seed(module_path!()) ^ $crate::name_seed(stringify!($name));
            for case in 0..u64::from(config.cases) {
                let mut rng = $crate::TestRng::new(base ^ case.wrapping_mul(0x9E37_79B9));
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                let outcome = (|| -> ::core::result::Result<(), ::std::string::String> {
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(msg) = outcome {
                    panic!(
                        "proptest case {case} of {} failed: {msg}",
                        stringify!($name)
                    );
                }
            }
        }
        $crate::proptest!(@fns ($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@fns ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Prelude mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{prop, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 5u64..50, y in -3i64..3, f in 0.25f64..0.75) {
            prop_assert!((5..50).contains(&x));
            prop_assert!((-3..3).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_sizes_respect_range(
            v in prop::collection::vec(0u64..10, 3..7),
            w in prop::collection::vec(0u64..10, 4),
        ) {
            prop_assert!((3..7).contains(&v.len()), "len {}", v.len());
            prop_assert_eq!(w.len(), 4);
        }

        #[test]
        fn tuples_compose(pair in (0u64..4, 0usize..9)) {
            prop_assert!(pair.0 < 4 && pair.1 < 9);
        }
    }

    #[test]
    fn failing_case_reports_case_number() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(_x in 0u64..10) {
                prop_assert!(false, "forced failure");
            }
        }
        let err = std::panic::catch_unwind(always_fails).unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("forced failure"), "{msg}");
    }
}
